// Differential bisimulation checking.
//
// The paper's program optimizer proves (in Nuprl) that the optimized GPM
// program is bisimilar to the original. Our substitution establishes
// equivalence by lock-step differential execution: both processes are fed
// the same message trace and must produce identical outputs at every step.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpm/process.hpp"

namespace shadow::gpm {

struct BisimResult {
  bool bisimilar = true;
  std::string detail;  // witness on failure
};

/// True iff two send directives are observably identical (same destination,
/// header, delay, and body bytes as far as the type-erased body allows:
/// headers + wire size + destination define observable equality here; body
/// equality is checked by the caller-supplied comparator if given).
using BodyEq = bool (*)(const net::Message&, const net::Message&);

/// Steps `a` and `b` in lock-step over `trace`; returns failure with a
/// witness at the first observable divergence.
BisimResult check_bisimilar(std::shared_ptr<const Process> a, std::shared_ptr<const Process> b,
                            const std::vector<net::Message>& trace, BodyEq body_eq = nullptr);

}  // namespace shadow::gpm
