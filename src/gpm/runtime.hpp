// Binds GPM processes to simulated nodes.
//
// The runtime is the hand-written "environment" the paper trusts (Sec. III-C):
// it feeds incoming messages to the process, replaces the process with the
// returned continuation, charges the tier cost model for the reported work,
// and ships the outputs.
#pragma once

#include <memory>
#include <vector>

#include "gpm/process.hpp"
#include "gpm/tier.hpp"
#include "net/transport.hpp"

namespace shadow::gpm {

/// Hosts one GPM process on one simulated node.
class ProcessHost {
 public:
  ProcessHost(net::Transport& world, NodeId node, std::shared_ptr<const Process> process,
              ExecutionTier tier = ExecutionTier::kCompiled, CostModel costs = {});

  NodeId node() const { return node_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t total_work() const { return total_work_; }
  bool halted() const { return process_->halted(); }

 private:
  void on_message(net::NodeContext& ctx, const net::Message& msg);

  net::Transport& world_;
  NodeId node_;
  std::shared_ptr<const Process> process_;
  ExecutionTier tier_;
  CostModel costs_;
  std::uint64_t steps_ = 0;
  std::uint64_t total_work_ = 0;
};

/// Deploys a system generator over a set of locations ("main X @ locs").
/// Returns one host per location. Hosts must outlive the world run.
std::vector<std::unique_ptr<ProcessHost>> deploy(net::Transport& world, const SystemGenerator& gen,
                                                 const std::vector<NodeId>& locs,
                                                 ExecutionTier tier = ExecutionTier::kCompiled,
                                                 CostModel costs = {});

}  // namespace shadow::gpm
