#include "gpm/bisimulation.hpp"

#include <sstream>

namespace shadow::gpm {
namespace {

std::string describe(const SendDirective& d) {
  std::ostringstream os;
  os << "send('" << d.msg.header << "' to " << to_string(d.to) << ", delay=" << d.delay << ")";
  return os.str();
}

}  // namespace

BisimResult check_bisimilar(std::shared_ptr<const Process> a, std::shared_ptr<const Process> b,
                            const std::vector<net::Message>& trace, BodyEq body_eq) {
  for (std::size_t step = 0; step < trace.size(); ++step) {
    StepResult ra = a->step(trace[step]);
    StepResult rb = b->step(trace[step]);
    a = std::move(ra.next);
    b = std::move(rb.next);

    if (ra.outputs.size() != rb.outputs.size()) {
      std::ostringstream os;
      os << "step " << step << ": output counts differ (" << ra.outputs.size() << " vs "
         << rb.outputs.size() << ")";
      return {false, os.str()};
    }
    for (std::size_t i = 0; i < ra.outputs.size(); ++i) {
      const SendDirective& da = ra.outputs[i];
      const SendDirective& db = rb.outputs[i];
      const bool same = da.to == db.to && da.msg.header == db.msg.header &&
                        da.delay == db.delay && (!body_eq || body_eq(da.msg, db.msg));
      if (!same) {
        std::ostringstream os;
        os << "step " << step << ", output " << i << ": " << describe(da) << " vs "
           << describe(db);
        return {false, os.str()};
      }
    }
    if (a->halted() != b->halted()) {
      std::ostringstream os;
      os << "step " << step << ": halt states diverge";
      return {false, os.str()};
    }
  }
  return {};
}

}  // namespace shadow::gpm
