// General Process Model (GPM).
//
// In the paper, a GPM process is a tail-recursive function that consumes a
// message and computes (a) the outputs to send and (b) the process that
// replaces it. We model a process as an immutable value wrapping such a step
// function. Each step also reports the abstract *work* it performed (AST
// nodes evaluated), which the execution-tier cost model converts into
// virtual CPU time — this is what produces the interpreted/optimized/
// compiled performance tiers of Fig. 8.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "net/message.hpp"
#include "net/time.hpp"

namespace shadow::gpm {

/// An output of a process step: send `msg` to `to` after `delay` (the "d"
/// component in the paper's Inductive Logical Form, used for timers).
struct SendDirective {
  NodeId to{};
  net::Message msg;
  net::Time delay = 0;
};

class Process;

/// Result of one process step.
struct StepResult {
  std::shared_ptr<const Process> next;  // replacement process (never null)
  std::vector<SendDirective> outputs;
  std::uint64_t work = 1;  // abstract work units performed by this step
};

/// An immutable GPM process. A default-constructed Process is `halt`: it
/// ignores every input and stays halted (the paper's halted process).
class Process {
 public:
  using Step = std::function<StepResult(const Process& self, const net::Message&)>;

  Process() = default;
  explicit Process(Step step) : step_(std::move(step)) {}

  bool halted() const { return !step_; }

  /// Steps the process. For halt, returns itself with no outputs.
  StepResult step(const net::Message& msg) const {
    if (halted()) return StepResult{halt(), {}, 0};
    return step_(*this, msg);
  }

  static std::shared_ptr<const Process> halt() {
    static const auto h = std::make_shared<const Process>();
    return h;
  }

  static std::shared_ptr<const Process> make(Step step) {
    return std::make_shared<const Process>(std::move(step));
  }

 private:
  Step step_;
};

/// A distributed-system generator (the paper's `main X @ locs`): maps each
/// location to the process that runs there (halt if the location is not
/// part of the system).
using SystemGenerator = std::function<std::shared_ptr<const Process>(NodeId)>;

}  // namespace shadow::gpm
