#include "gpm/runtime.hpp"

namespace shadow::gpm {

ProcessHost::ProcessHost(net::Transport& world, NodeId node, std::shared_ptr<const Process> process,
                         ExecutionTier tier, CostModel costs)
    : world_(world), node_(node), process_(std::move(process)), tier_(tier), costs_(costs) {
  SHADOW_REQUIRE(process_ != nullptr);
  world_.set_handler(node_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
}

void ProcessHost::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (process_->halted()) return;
  StepResult result = process_->step(msg);
  SHADOW_CHECK(result.next != nullptr);
  process_ = std::move(result.next);
  ++steps_;
  total_work_ += result.work;
  ctx.charge(costs_.cost_us(tier_, result.work));
  for (SendDirective& out : result.outputs) {
    if (out.delay == 0) {
      ctx.send(out.to, std::move(out.msg));
    } else {
      // Delayed sends model the "d" component of the ILF (timers): deliver
      // the directive to the node itself after the delay, then forward.
      NodeId to = out.to;
      ctx.set_timer(out.delay, [to, m = std::move(out.msg)](net::NodeContext& c) mutable {
        c.send(to, std::move(m));
      });
    }
  }
}

std::vector<std::unique_ptr<ProcessHost>> deploy(net::Transport& world, const SystemGenerator& gen,
                                                 const std::vector<NodeId>& locs,
                                                 ExecutionTier tier, CostModel costs) {
  std::vector<std::unique_ptr<ProcessHost>> hosts;
  hosts.reserve(locs.size());
  for (NodeId loc : locs) {
    hosts.push_back(std::make_unique<ProcessHost>(world, loc, gen(loc), tier, costs));
  }
  return hosts;
}

}  // namespace shadow::gpm
