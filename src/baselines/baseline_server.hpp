// Baseline database servers the paper compares against (Sec. IV-B).
//
// One server class covers the three deployments via `Replication`:
//
//   kNone      — a standalone database (the "H2-stdalone" curve);
//   kEager     — H2-style built-in replication: statements execute on the
//                primary while the transaction's locks are held, and at
//                commit the statement log is shipped synchronously to the
//                replica, which applies it before the primary commits and
//                answers. Locks are held across the replication round trip,
//                which with H2's table-level locks is why "transactions
//                timeout when trying to lock the database table";
//   kSemiSync  — MySQL-style semi-synchronous replication: the primary
//                commits (releasing locks), ships the transaction to the
//                slave, and answers the client once the slave acknowledges.
//
// Unlike ShadowDB replicas (stored procedures in the same JVM), baseline
// clients talk JDBC: each statement beyond the first costs a client round
// trip (`per_statement_delay`) during which the transaction's locks stay
// held — the mechanism behind H2-repl's TPC-C collapse (62 tps) and the
// co-location advantage the paper measures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "db/engine.hpp"
#include "net/transport.hpp"
#include "workload/messages.hpp"
#include "workload/procedures.hpp"

namespace shadow::baselines {

enum class Replication : std::uint8_t { kNone, kEager, kSemiSync };

struct BaselineConfig {
  Replication replication = Replication::kNone;
  net::Time per_statement_delay = 10;   // µs: client JDBC round trip (LAN, pipelined)
  net::Time engine_tick_period = 5000;  // drives lock-wait timeouts
  std::uint64_t per_txn_server_us = 80; // request/reply handling
  std::uint64_t per_stmt_server_us = 8; // SQL dispatch per statement
  // Thundering-herd overhead: CPU burned per waiting transaction when a
  // lock is released (contention collapse of the MySQL-memory engine).
  std::uint64_t herd_wake_us = 8;
  // Binlog/group-commit window: semi-sync primaries hold statement locks
  // until the log write completes; concurrent writers queue on the table
  // lock during the window (MySQL-memory's peak-then-decline shape).
  net::Time commit_delay_us = 0;
};

/// Applies replicated transactions on the secondary (no client protocol).
class ReplicaApplier {
 public:
  ReplicaApplier(net::Transport& world, NodeId self, std::shared_ptr<db::Engine> engine);
  NodeId node() const { return self_; }
  db::Engine& engine() { return *engine_; }

 private:
  void on_message(net::NodeContext& ctx, const net::Message& msg);

  net::Transport& world_;
  NodeId self_;
  std::shared_ptr<db::Engine> engine_;
};

/// Statement log shipped to the replica (eager) or slave (semi-sync).
struct ReplicateBody {
  std::uint64_t session = 0;
  std::vector<db::Statement> statements;
};
struct ReplicateAckBody {
  std::uint64_t session = 0;
};

inline constexpr const char* kReplicateHeader = "bl-replicate";
inline constexpr const char* kReplicateAckHeader = "bl-replicate-ack";

class BaselineServer {
 public:
  BaselineServer(net::Transport& world, NodeId self, std::shared_ptr<db::Engine> engine,
                 std::shared_ptr<const workload::ProcedureRegistry> registry,
                 BaselineConfig config = {}, std::optional<NodeId> replica = std::nullopt);

  NodeId node() const { return self_; }
  db::Engine& engine() { return *engine_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    workload::TxnRequest request;
    db::TxnId txn = 0;
    std::size_t step = 0;
    std::vector<db::ExecResult> results;
    std::vector<db::Statement> statement_log;  // writes only, for replication
    std::vector<db::Row> answer_rows;
    bool awaiting_wake = false;
    bool awaiting_replica = false;
    // The statement parked on a lock; logged for replication when the wake
    // path completes it successfully.
    std::optional<db::Statement> pending_stmt;
  };

  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_request(net::NodeContext& ctx, const workload::TxnRequest& req);
  void advance(net::NodeContext& ctx, Session& session);
  void handle_result(net::NodeContext& ctx, Session& session, const db::ExecResult& result);
  void reach_commit(net::NodeContext& ctx, Session& session);
  void ship_to_replica(net::NodeContext& ctx, Session& session);
  void finish(net::NodeContext& ctx, Session& session, bool committed, const std::string& error);
  void on_engine_wake(db::TxnId txn, const db::ExecResult& result);
  void tick(net::NodeContext& ctx);

  net::Transport& world_;
  NodeId self_;
  std::shared_ptr<db::Engine> engine_;
  std::shared_ptr<const workload::ProcedureRegistry> registry_;
  BaselineConfig config_;
  std::optional<NodeId> replica_;

  std::map<std::uint64_t, Session> sessions_;
  std::map<db::TxnId, std::uint64_t> session_by_txn_;
  std::uint64_t next_session_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  // Dedup (at-most-once) for client retries, as in ShadowDB.
  std::map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> last_by_client_;
  net::NodeContext* current_ctx_ = nullptr;  // valid during handler execution
};

/// Convenience bundles for the three deployments.
struct StandaloneDb {
  std::unique_ptr<BaselineServer> server;
  NodeId node() const { return server->node(); }
};
StandaloneDb make_standalone(net::Transport& world, std::shared_ptr<db::Engine> engine,
                             std::shared_ptr<const workload::ProcedureRegistry> registry,
                             BaselineConfig config = {});

struct ReplicatedDb {
  std::unique_ptr<BaselineServer> primary;
  std::unique_ptr<ReplicaApplier> secondary;
  NodeId node() const { return primary->node(); }
};
/// H2-style eager replication (table locks held across the sync round trip).
ReplicatedDb make_h2_repl(net::Transport& world,
                          std::shared_ptr<const workload::ProcedureRegistry> registry,
                          const std::function<void(db::Engine&)>& loader,
                          BaselineConfig config = {});
/// MySQL-style semi-sync replication. `traits` picks memory vs InnoDB.
ReplicatedDb make_mysql_repl(net::Transport& world,
                             std::shared_ptr<const workload::ProcedureRegistry> registry,
                             const std::function<void(db::Engine&)>& loader,
                             db::EngineTraits traits, BaselineConfig config = {});

}  // namespace shadow::baselines

namespace shadow::wire {

template <>
struct Codec<baselines::ReplicateBody> {
  static void encode(BytesWriter& w, const baselines::ReplicateBody& v) {
    w.u64(v.session);
    Codec<std::vector<db::Statement>>::encode(w, v.statements);
  }
  static baselines::ReplicateBody decode(BytesReader& r) {
    baselines::ReplicateBody v;
    v.session = r.u64();
    v.statements = Codec<std::vector<db::Statement>>::decode(r);
    return v;
  }
};

template <>
struct Codec<baselines::ReplicateAckBody> {
  static void encode(BytesWriter& w, const baselines::ReplicateAckBody& v) {
    w.u64(v.session);
  }
  static baselines::ReplicateAckBody decode(BytesReader& r) {
    return {r.u64()};
  }
};

}  // namespace shadow::wire
