#include "baselines/baseline_server.hpp"

namespace shadow::baselines {

// ------------------------------------------------------------ ReplicaApplier

ReplicaApplier::ReplicaApplier(net::Transport& world, NodeId self,
                               std::shared_ptr<db::Engine> engine)
    : world_(world), self_(self), engine_(std::move(engine)) {
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
}

void ReplicaApplier::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header != kReplicateHeader) return;
  const auto& body = net::msg_body<ReplicateBody>(msg);
  // The applier is the engine's only user: statements never block.
  const db::TxnId txn = engine_->begin();
  ctx.charge(engine_->traits().costs.begin_us);
  for (const db::Statement& stmt : body.statements) {
    const db::ExecResult r = engine_->execute(txn, stmt);
    ctx.charge(r.cost_us);
    SHADOW_CHECK_MSG(r.ok(), "replicated statement failed on the secondary");
  }
  ctx.charge(engine_->commit(txn).cost_us);
  ctx.send(msg.from, net::make_msg(kReplicateAckHeader, ReplicateAckBody{body.session}));
}

// ------------------------------------------------------------ BaselineServer

BaselineServer::BaselineServer(net::Transport& world, NodeId self,
                               std::shared_ptr<db::Engine> engine,
                               std::shared_ptr<const workload::ProcedureRegistry> registry,
                               BaselineConfig config, std::optional<NodeId> replica)
    : world_(world),
      self_(self),
      engine_(std::move(engine)),
      registry_(std::move(registry)),
      config_(config),
      replica_(replica) {
  SHADOW_REQUIRE(config_.replication == Replication::kNone || replica_.has_value());
  engine_->set_clock([this] { return world_.now(); });
  engine_->set_wake([this](db::TxnId txn, const db::ExecResult& result) {
    on_engine_wake(txn, result);
  });
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    current_ctx_ = &ctx;
    on_message(ctx, msg);
    current_ctx_ = nullptr;
  });
  world_.schedule_timer_for_node(self_, world_.now() + config_.engine_tick_period,
                                 [this](net::NodeContext& ctx) {
                                   current_ctx_ = &ctx;
                                   tick(ctx);
                                   current_ctx_ = nullptr;
                                 });
}

void BaselineServer::tick(net::NodeContext& ctx) {
  engine_->tick(ctx.now());
  ctx.set_timer(config_.engine_tick_period, [this](net::NodeContext& c) {
    current_ctx_ = &c;
    tick(c);
    current_ctx_ = nullptr;
  });
}

void BaselineServer::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == workload::kTxnRequestHeader) {
    on_request(ctx, net::msg_body<workload::TxnRequest>(msg));
    return;
  }
  if (msg.header == kReplicateAckHeader) {
    const auto& ack = net::msg_body<ReplicateAckBody>(msg);
    auto it = sessions_.find(ack.session);
    if (it == sessions_.end() || !it->second.awaiting_replica) return;
    Session& session = it->second;
    session.awaiting_replica = false;
    if (config_.replication == Replication::kEager) {
      // Locks were held across the replication round trip; commit now.
      ctx.charge(engine_->commit(session.txn).cost_us);
    }
    finish(ctx, session, true, "");
    return;
  }
}

void BaselineServer::on_request(net::NodeContext& ctx, const workload::TxnRequest& req) {
  ctx.charge(config_.per_txn_server_us);
  if (auto it = last_by_client_.find(req.client.value);
      it != last_by_client_.end() && req.seq <= it->second.first) {
    workload::TxnResponse resp = it->second.second;
    resp.seq = req.seq;
    ctx.send(req.reply_to, workload::make_response_msg(resp));
    return;
  }
  Session session;
  session.id = next_session_++;
  session.request = req;
  session.txn = engine_->begin();
  ctx.charge(engine_->traits().costs.begin_us);
  session_by_txn_[session.txn] = session.id;
  auto [it, inserted] = sessions_.emplace(session.id, std::move(session));
  SHADOW_CHECK(inserted);
  advance(ctx, it->second);
}

void BaselineServer::advance(net::NodeContext& ctx, Session& session) {
  const workload::ProcedureFn& proc = registry_->get(session.request.proc);
  while (true) {
    const workload::ProcStep next =
        proc(workload::StepContext{session.request.params, session.step, session.results});
    if (next.kind == workload::ProcStep::Kind::kCommit) {
      reach_commit(ctx, session);
      return;
    }
    if (next.kind == workload::ProcStep::Kind::kRollback) {
      ctx.charge(engine_->abort(session.txn).cost_us);
      finish(ctx, session, false, "rolled back by transaction logic");
      return;
    }

    // JDBC pacing: every statement after the first costs a client round
    // trip during which the transaction's locks stay held.
    if (session.step > 0 && config_.per_statement_delay > 0) {
      const std::uint64_t id = session.id;
      db::Statement stmt = next.stmt;
      ctx.set_timer(config_.per_statement_delay,
                    [this, id, stmt = std::move(stmt)](net::NodeContext& c) {
                      current_ctx_ = &c;
                      auto it = sessions_.find(id);
                      if (it != sessions_.end()) {
                        c.charge(config_.per_stmt_server_us);
                        const db::ExecResult r = engine_->execute(it->second.txn, stmt);
                        c.charge(r.cost_us);
                        if (r.status == db::ExecResult::Status::kBlocked) {
                          it->second.awaiting_wake = true;
                          it->second.pending_stmt = stmt;
                        } else {
                          if (r.ok() && !stmt.is_read_only()) {
                            it->second.statement_log.push_back(stmt);
                          }
                          handle_result(c, it->second, r);
                        }
                      }
                      current_ctx_ = nullptr;
                    });
      return;
    }

    ctx.charge(config_.per_stmt_server_us);
    const db::ExecResult result = engine_->execute(session.txn, next.stmt);
    ctx.charge(result.cost_us);
    if (result.status == db::ExecResult::Status::kBlocked) {
      session.awaiting_wake = true;
      session.pending_stmt = next.stmt;
      return;
    }
    if (result.ok() && !next.stmt.is_read_only()) session.statement_log.push_back(next.stmt);
    if (result.status == db::ExecResult::Status::kAborted) {
      if (engine_->is_active(session.txn)) engine_->abort(session.txn);
      finish(ctx, session, false, result.error);
      return;
    }
    if (!result.rows.empty()) session.answer_rows = result.rows;
    session.results.push_back(result);
    ++session.step;
  }
}

void BaselineServer::handle_result(net::NodeContext& ctx, Session& session,
                                   const db::ExecResult& result) {
  if (result.status == db::ExecResult::Status::kAborted) {
    if (engine_->is_active(session.txn)) engine_->abort(session.txn);
    finish(ctx, session, false, result.error);
    return;
  }
  if (!result.rows.empty()) session.answer_rows = result.rows;
  session.results.push_back(result);
  ++session.step;
  advance(ctx, session);
}

void BaselineServer::reach_commit(net::NodeContext& ctx, Session& session) {
  if (config_.replication == Replication::kNone || session.statement_log.empty()) {
    ctx.charge(engine_->commit(session.txn).cost_us);
    finish(ctx, session, true, "");
    return;
  }
  if (config_.replication == Replication::kSemiSync) {
    // The binlog/group-commit window: locks stay held while the log write
    // completes; concurrent writers pile up on the table lock meanwhile —
    // the contention that bends MySQL-memory's curve downward.
    if (config_.commit_delay_us > 0) {
      const std::uint64_t id = session.id;
      ctx.set_timer(config_.commit_delay_us, [this, id](net::NodeContext& c) {
        current_ctx_ = &c;
        auto it = sessions_.find(id);
        if (it != sessions_.end()) {
          c.charge(engine_->commit(it->second.txn).cost_us);
          ship_to_replica(c, it->second);
        }
        current_ctx_ = nullptr;
      });
      return;
    }
    // Commit locally first (locks released), then wait for the slave ack.
    ctx.charge(engine_->commit(session.txn).cost_us);
  }
  // kEager: commit deferred until the replica acknowledged — locks held.
  ship_to_replica(ctx, session);
}

void BaselineServer::ship_to_replica(net::NodeContext& ctx, Session& session) {
  session.awaiting_replica = true;
  ReplicateBody body{session.id, session.statement_log};
  ctx.send(*replica_, net::make_msg(kReplicateHeader, std::move(body)));
}

void BaselineServer::finish(net::NodeContext& ctx, Session& session, bool committed,
                            const std::string& error) {
  // Contention collapse: waking the herd of lock waiters burns CPU in
  // proportion to their number (MySQL-memory's declining curve).
  if (config_.herd_wake_us > 0) {
    ctx.charge(config_.herd_wake_us * engine_->waiting_count());
  }
  workload::TxnResponse resp;
  resp.client = session.request.client;
  resp.seq = session.request.seq;
  resp.committed = committed;
  resp.rows = session.answer_rows;
  resp.error = error;
  if (committed) {
    ++committed_;
  } else {
    ++aborted_;
  }
  last_by_client_[resp.client.value] = {resp.seq, resp};
  ctx.send(session.request.reply_to, workload::make_response_msg(resp));
  session_by_txn_.erase(session.txn);
  sessions_.erase(session.id);
}

void BaselineServer::on_engine_wake(db::TxnId txn, const db::ExecResult& result) {
  SHADOW_CHECK_MSG(current_ctx_ != nullptr, "engine wake outside a handler");
  auto sit = session_by_txn_.find(txn);
  if (sit == session_by_txn_.end()) return;
  const std::uint64_t session_id = sit->second;
  // Defer the woken session's continuation out of the current handler:
  // running it inline (inside another session's commit) would let its own
  // commit overtake the committing session's replication log on the wire,
  // reordering conflicting transactions at the secondary.
  current_ctx_->set_timer(0, [this, session_id, result](net::NodeContext& c) {
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.awaiting_wake) return;
    current_ctx_ = &c;
    Session& session = it->second;
    session.awaiting_wake = false;
    // A write that completed through the wake path still belongs in the
    // replication log.
    if (session.pending_stmt.has_value()) {
      if (result.status == db::ExecResult::Status::kOk &&
          !session.pending_stmt->is_read_only()) {
        session.statement_log.push_back(*session.pending_stmt);
      }
      session.pending_stmt.reset();
    }
    handle_result(c, session, result);
    current_ctx_ = nullptr;
  });
}

// ------------------------------------------------------------------ bundles

StandaloneDb make_standalone(net::Transport& world, std::shared_ptr<db::Engine> engine,
                             std::shared_ptr<const workload::ProcedureRegistry> registry,
                             BaselineConfig config) {
  config.replication = Replication::kNone;
  StandaloneDb bundle;
  const NodeId node = world.add_node("standalone-" + engine->traits().name);
  bundle.server = std::make_unique<BaselineServer>(world, node, std::move(engine),
                                                   std::move(registry), config);
  return bundle;
}

ReplicatedDb make_h2_repl(net::Transport& world,
                          std::shared_ptr<const workload::ProcedureRegistry> registry,
                          const std::function<void(db::Engine&)>& loader,
                          BaselineConfig config) {
  config.replication = Replication::kEager;
  // H2's replication ships statements synchronously while the transaction
  // runs: every statement costs the client round trip PLUS the replica
  // round trip, all under the transaction's table locks.
  config.per_statement_delay = std::max<net::Time>(config.per_statement_delay, 260);
  auto primary_engine = std::make_shared<db::Engine>(db::make_h2_traits());
  auto secondary_engine = std::make_shared<db::Engine>(db::make_h2_traits());
  if (loader) {
    loader(*primary_engine);
    loader(*secondary_engine);
  }
  ReplicatedDb bundle;
  const NodeId secondary_node = world.add_node("h2repl-secondary");
  bundle.secondary =
      std::make_unique<ReplicaApplier>(world, secondary_node, std::move(secondary_engine));
  const NodeId primary_node = world.add_node("h2repl-primary");
  bundle.primary = std::make_unique<BaselineServer>(
      world, primary_node, std::move(primary_engine), std::move(registry), config,
      secondary_node);
  return bundle;
}

ReplicatedDb make_mysql_repl(net::Transport& world,
                             std::shared_ptr<const workload::ProcedureRegistry> registry,
                             const std::function<void(db::Engine&)>& loader,
                             db::EngineTraits traits, BaselineConfig config) {
  config.replication = Replication::kSemiSync;
  // Table-lock engines hold statement locks across the binlog write window.
  if (config.commit_delay_us == 0 && !traits.row_locks) config.commit_delay_us = 150;
  auto primary_engine = std::make_shared<db::Engine>(traits);
  auto secondary_engine = std::make_shared<db::Engine>(traits);
  if (loader) {
    loader(*primary_engine);
    loader(*secondary_engine);
  }
  ReplicatedDb bundle;
  const NodeId secondary_node = world.add_node("mysql-slave");
  bundle.secondary =
      std::make_unique<ReplicaApplier>(world, secondary_node, std::move(secondary_engine));
  const NodeId primary_node = world.add_node("mysql-primary");
  bundle.primary = std::make_unique<BaselineServer>(
      world, primary_node, std::move(primary_engine), std::move(registry), config,
      secondary_node);
  return bundle;
}

}  // namespace shadow::baselines
