#include "core/chain.hpp"

#include "core/pbr.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace shadow::core {

namespace {

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

constexpr std::uint64_t kForwardCost = 20;  // µs to relay one update down-chain

}  // namespace

ChainReplica::ChainReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
                           std::shared_ptr<db::Engine> engine,
                           std::shared_ptr<const workload::ProcedureRegistry> registry,
                           std::vector<NodeId> chain, std::vector<NodeId> spares,
                           ChainConfig config, ServerCosts costs)
    : world_(world),
      self_(self),
      tob_(tob),
      executor_(std::move(engine), std::move(registry), costs),
      config_(std::move(config)),
      chain_(std::move(chain)),
      spares_(std::move(spares)) {
  SHADOW_REQUIRE(!chain_.empty());
  SHADOW_REQUIRE_MSG(world_.host_of(self_) == world_.host_of(tob_.node()),
                     "chain replicas are co-located with their broadcast service node");
  chain_size_target_ = chain_.size();
  reconfig_client_id_ = ClientId{0x60000000u + self_.value};
  snap_rx_ = repl::StateTransfer::Receiver({config_.tracer, self_});
  if (!contains(chain_, self_)) state_ = State::kSpare;

  tob_.subscribe_local([this](net::NodeContext& ctx, Slot, std::uint64_t, const tob::Command& cmd) {
    ctx.send(self_, net::make_msg(kChainDeliverHeader, cmd));
  });
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
  if (config_.enable_failure_detection) {
    world_.schedule_timer_for_node(self_, world_.now() + config_.hb_period,
                                   [this](net::NodeContext& ctx) { on_heartbeat_tick(ctx); });
  }
}

std::optional<NodeId> ChainReplica::successor() const {
  auto it = std::find(chain_.begin(), chain_.end(), self_);
  if (it == chain_.end() || it + 1 == chain_.end()) return std::nullopt;
  return *(it + 1);
}

// ---------------------------------------------------------------- messages --

void ChainReplica::on_message(net::NodeContext& ctx, const net::Message& msg) {
  last_heard_[msg.from.value] = ctx.now();

  if (msg.header == kChainDeliverHeader) {
    on_deliver(ctx, net::msg_body<tob::Command>(msg));
    return;
  }
  if (msg.header == workload::kTxnRequestHeader) {
    on_client_request(ctx, net::msg_body<workload::TxnRequest>(msg));
    return;
  }
  if (msg.header == kReplFwdHeader) {
    on_forward(ctx, net::msg_body<ForwardBody>(msg));
    return;
  }
  if (msg.header == kChainElectHeader) {
    on_elect(ctx, msg.from, net::msg_body<ElectBody>(msg));
    return;
  }
  if (msg.header == kChainHbHeader) {
    return;  // liveness recorded above
  }
  if (msg.header == kChainCatchupHeader) {
    const auto& body = net::msg_body<CatchupBody>(msg);
    if (body.config != config_seq_) return;
    for (const auto& [order, req] : body.txns) {
      if (order != executed_order_ + 1) continue;
      execute_and_cache(ctx, order, req, /*answer_client=*/false);
    }
    state_ = State::kNormal;
    if (config_.tracer) config_.tracer->recover(ctx.now(), self_, executed_order_);
    ctx.send(msg.from, net::make_msg(kChainRecoveredHeader, SnapDoneBody{config_seq_}));
    apply_buffered(ctx);
    return;
  }
  if (msg.header == kChainSnapBeginHeader) {
    const auto& body = net::msg_body<SnapBeginBody>(msg);
    if (body.config != config_seq_) return;
    snap_rx_.begin_full(executor_.engine(), body);
    install_snapshot_dedup(executor_, body);
    return;
  }
  if (msg.header == kChainSnapBatchHeader) {
    snap_rx_.on_batch(ctx, executor_.engine(), net::msg_body<SnapBatchBody>(msg), msg.from);
    return;
  }
  if (msg.header == kChainSnapDoneHeader) {
    const auto& body = net::msg_body<SnapDoneBody>(msg);
    if (body.config != config_seq_ || !snap_rx_.awaiting()) return;
    executed_order_ = snap_rx_.finish(executor_.engine());
    next_order_ = std::max(next_order_, executed_order_);
    state_ = State::kNormal;
    if (config_.tracer) {
      config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kDone, 0, msg.from);
      config_.tracer->recover(ctx.now(), self_, executed_order_);
    }
    ctx.send(msg.from, net::make_msg(kChainRecoveredHeader, SnapDoneBody{config_seq_}));
    apply_buffered(ctx);
    return;
  }
  if (msg.header == kChainRecoveredHeader) {
    const auto& body = net::msg_body<SnapDoneBody>(msg);
    if (body.config != config_seq_) return;
    recovered_.insert(msg.from.value);
    if (recovered_.size() >= chain_.size() - 1) accepting_ = true;
    return;
  }
}

// -------------------------------------------------------------- normal case --

void ChainReplica::on_client_request(net::NodeContext& ctx, const workload::TxnRequest& req) {
  const bool read_only = config_.read_only_procs.count(req.proc) > 0;
  if (state_ != State::kNormal || chain_.empty()) {
    ctx.send(req.reply_to,
             net::make_msg(kPbrRedirectHeader,
                           RedirectBody{NodeId{UINT32_MAX}, config_seq_, true}));
    return;
  }

  if (read_only) {
    // Queries are the tail's job: it only knows fully-replicated updates.
    if (chain_.back() != self_) {
      ctx.send(req.reply_to, net::make_msg(kPbrRedirectHeader,
                                           RedirectBody{chain_.back(), config_seq_, false}));
      return;
    }
    const TxnExecutor::Execution exec = executor_.execute(req);
    ctx.charge(exec.cost_us);
    if (config_.tracer) {
      config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, obs::kUnordered,
                                  exec.duplicate, exec.response.committed, req.proc);
    }
    ctx.send(req.reply_to, workload::make_response_msg(exec.response));
    return;
  }

  // Updates enter at the head.
  if (chain_.front() != self_) {
    ctx.send(req.reply_to, net::make_msg(kPbrRedirectHeader,
                                         RedirectBody{chain_.front(), config_seq_, false}));
    return;
  }
  if (!accepting_) {
    ctx.send(req.reply_to, net::make_msg(kPbrRedirectHeader,
                                         RedirectBody{self_, config_seq_, true}));
    return;
  }
  const TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (exec.duplicate) {
    if (config_.tracer) {
      config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, obs::kUnordered, true,
                                  exec.response.committed, req.proc);
    }
    ctx.send(req.reply_to, workload::make_response_msg(exec.response));
    return;
  }
  const std::uint64_t order = ++next_order_;
  executed_order_ = order;
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, order, false,
                                exec.response.committed, req.proc);
  }
  txn_cache_.emplace_back(order, req);
  if (txn_cache_.size() > config_.txn_cache_max) txn_cache_.pop_front();
  if (chain_.size() == 1) {
    // Degenerate chain: head is tail; answer directly.
    ctx.send(req.reply_to, workload::make_response_msg(exec.response));
    return;
  }
  forward_down(ctx, order, req);
}

void ChainReplica::forward_down(net::NodeContext& ctx, std::uint64_t order,
                                const workload::TxnRequest& req) {
  const auto next = successor();
  if (!next) return;
  ctx.charge(kForwardCost);
  ctx.send(*next, net::make_msg(kReplFwdHeader, ForwardBody{config_seq_, order, req}));
}

void ChainReplica::on_forward(net::NodeContext& ctx, const ForwardBody& fwd) {
  if (fwd.config != config_seq_) return;
  if (state_ == State::kRecovering) {
    buffered_forwards_.push_back(fwd);
    return;
  }
  if (state_ != State::kNormal || !contains(chain_, self_)) return;
  if (fwd.order != executed_order_ + 1) return;  // FIFO links make gaps impossible
  // The tail answers the client: the update is now in every replica.
  execute_and_cache(ctx, fwd.order, fwd.request, /*answer_client=*/chain_.back() == self_);
  forward_down(ctx, fwd.order, fwd.request);
}

void ChainReplica::execute_and_cache(net::NodeContext& ctx, std::uint64_t order,
                                     const workload::TxnRequest& req, bool answer_client) {
  const TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, order, exec.duplicate,
                                exec.response.committed, req.proc);
  }
  executed_order_ = order;
  next_order_ = std::max(next_order_, order);
  txn_cache_.emplace_back(order, req);
  if (txn_cache_.size() > config_.txn_cache_max) txn_cache_.pop_front();
  if (answer_client) ctx.send(req.reply_to, workload::make_response_msg(exec.response));
}

void ChainReplica::apply_buffered(net::NodeContext& ctx) {
  while (!buffered_forwards_.empty()) {
    const ForwardBody fwd = buffered_forwards_.front();
    buffered_forwards_.pop_front();
    if (fwd.config != config_seq_ || fwd.order != executed_order_ + 1) continue;
    execute_and_cache(ctx, fwd.order, fwd.request, chain_.back() == self_);
    forward_down(ctx, fwd.order, fwd.request);
  }
}

// ------------------------------------------------------------------ recovery --

void ChainReplica::on_deliver(net::NodeContext& ctx, const tob::Command& cmd) {
  const workload::TxnRequest req = workload::decode_request(cmd.payload);
  if (req.proc != kChainReconfigProc) return;
  const auto g = static_cast<ConfigSeq>(req.params[0].as_int());
  if (g != config_seq_) return;  // only the first proposal counts

  std::vector<NodeId> new_chain;
  for (std::size_t i = 2; i < req.params.size(); ++i) {
    new_chain.push_back(NodeId{static_cast<std::uint32_t>(req.params[i].as_int())});
  }
  config_seq_ = g + 1;
  chain_ = new_chain;
  buffered_forwards_.clear();
  snap_rx_.reset();
  recovered_.clear();
  accepting_ = false;

  if (!contains(chain_, self_)) {
    state_ = state_ == State::kSpare ? State::kSpare : State::kDeposed;
    return;
  }
  state_ = State::kElecting;
  const net::Time now = ctx.now();
  for (NodeId member : chain_) last_heard_[member.value] = now;
  const net::Message elect =
      net::make_msg(kChainElectHeader, ElectBody{config_seq_, executed_order_});
  for (NodeId member : chain_) {
    if (member != self_) ctx.send(member, elect);
  }
  pending_elects_[config_seq_][self_.value] = executed_order_;
  maybe_finish_election(ctx);
}

void ChainReplica::on_elect(net::NodeContext& ctx, NodeId from, const ElectBody& elect) {
  pending_elects_[elect.config][from.value] = elect.executed;
  if (elect.config == config_seq_ && state_ == State::kElecting) maybe_finish_election(ctx);
}

void ChainReplica::maybe_finish_election(net::NodeContext& ctx) {
  const auto& elects = pending_elects_[config_seq_];
  for (NodeId member : chain_) {
    if (elects.count(member.value) == 0) return;
  }
  // In a chain the most-advanced survivor is authoritative (updates flow
  // head → tail, so prefixes only shrink down-chain). It brings the others
  // up to date and the configured chain order then resumes.
  NodeId source = chain_[0];
  std::uint64_t best = elects.at(chain_[0].value);
  for (NodeId member : chain_) {
    const std::uint64_t seq = elects.at(member.value);
    if (seq > best || (seq == best && member.value < source.value)) {
      source = member;
      best = seq;
    }
  }
  if (source != self_) {
    state_ = executed_order_ == best ? State::kNormal : State::kRecovering;
    if (state_ == State::kNormal) {
      ctx.send(source, net::make_msg(kChainRecoveredHeader, SnapDoneBody{config_seq_}));
    }
    return;
  }

  state_ = State::kNormal;
  next_order_ = executed_order_;
  recovered_.clear();
  std::size_t up_to_date = 0;
  for (NodeId member : chain_) {
    if (member == self_) continue;
    const std::uint64_t seq = elects.at(member.value);
    if (seq == executed_order_) {
      recovered_.insert(member.value);
      ++up_to_date;
    } else {
      send_state_to(ctx, member, seq);
    }
  }
  accepting_ = recovered_.size() >= chain_.size() - 1;
  (void)up_to_date;
}

void ChainReplica::send_state_to(net::NodeContext& ctx, NodeId member, std::uint64_t member_seq) {
  const bool cache_covers =
      !txn_cache_.empty() && txn_cache_.front().first <= member_seq + 1;
  if (cache_covers || member_seq == executed_order_) {
    CatchupBody body;
    body.config = config_seq_;
    for (const auto& [order, req] : txn_cache_) {
      if (order > member_seq) body.txns.emplace_back(order, req);
    }
    ctx.send(member, net::make_msg(kChainCatchupHeader, std::move(body)));
    return;
  }
  repl::StateTransfer::SendV1 spec;
  spec.headers = {kChainSnapBeginHeader, kChainSnapBatchHeader, kChainSnapDoneHeader, ""};
  spec.batch_bytes = config_.snapshot_batch_bytes;
  spec.begin.config = config_seq_;
  spec.begin.order = executed_order_;
  collect_snapshot_dedup(executor_, spec.begin);
  spec.done = SnapDoneBody{config_seq_};
  spec.tracer = config_.tracer;
  repl::StateTransfer::send_full_v1(ctx, executor_.engine(), member, std::move(spec));
}

// ----------------------------------------------------------- failure detection --

void ChainReplica::on_heartbeat_tick(net::NodeContext& ctx) {
  if (state_ == State::kNormal || state_ == State::kElecting ||
      state_ == State::kRecovering) {
    for (NodeId member : chain_) {
      if (member != self_) ctx.send(member, net::make_signal(kChainHbHeader));
    }
    const net::Time now = ctx.now();
    std::vector<NodeId> suspects;
    for (NodeId member : chain_) {
      if (member == self_) continue;
      auto [it, first] = last_heard_.try_emplace(member.value, now);
      (void)first;
      if (now - it->second >= config_.suspect_timeout) {
        const std::uint64_t key = (config_seq_ << 32) | member.value;
        if (proposed_.insert(key).second) suspects.push_back(member);
      }
    }
    if (!suspects.empty()) suspect_and_propose(ctx, suspects);
  }
  ctx.set_timer(config_.hb_period, [this](net::NodeContext& c) { on_heartbeat_tick(c); });
}

void ChainReplica::suspect_and_propose(net::NodeContext& ctx, const std::vector<NodeId>& suspects) {
  accepting_ = false;
  // Splice the suspects out of the chain and append spares at the tail (the
  // canonical chain-replication repair).
  std::vector<NodeId> proposal;
  for (NodeId member : chain_) {
    if (!contains(suspects, member)) proposal.push_back(member);
  }
  for (NodeId spare : spares_) {
    if (proposal.size() >= chain_size_target_) break;
    if (!contains(proposal, spare) && !contains(suspects, spare)) proposal.push_back(spare);
  }
  if (proposal.empty()) return;

  workload::TxnRequest req;
  req.client = reconfig_client_id_;
  req.seq = ++reconfig_seq_;
  req.reply_to = self_;
  req.proc = kChainReconfigProc;
  req.params = {db::Value(static_cast<std::int64_t>(config_seq_)),
                db::Value(static_cast<std::int64_t>(self_.value))};
  for (NodeId member : proposal) {
    req.params.push_back(db::Value(static_cast<std::int64_t>(member.value)));
  }
  tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
  ctx.send(tob_.node(), net::make_msg(tob::kBroadcastHeader, std::move(body)));
}

}  // namespace shadow::core
