#include "core/pipeline.hpp"

#include <chrono>

#include "obs/trace.hpp"
#include "workload/messages.hpp"

namespace shadow::core {

namespace {
// Backoff while the consensus thread waits on the executor with nothing to
// drain: long enough not to burn a core, short next to any real txn.
constexpr std::chrono::microseconds kWaitSlice{50};
}  // namespace

ExecutorPipeline::ExecutorPipeline(net::Transport& world, NodeId self,
                                   TxnExecutor& executor, std::size_t ring_capacity,
                                   obs::Tracer* tracer, std::string metric_scope)
    : world_(world),
      self_(self),
      executor_(executor),
      tracer_(tracer),
      depth_metric_(metric_scope + "pipeline.queue_depth"),
      batches_(ring_capacity),
      // Completions outnumber batches by the batch size; give them headroom
      // so the executor rarely blocks between drain cycles.
      completions_(ring_capacity * 4),
      executor_thread_([this] { executor_loop(); }) {}

ExecutorPipeline::~ExecutorPipeline() { shutdown(); }

void ExecutorPipeline::push(DeliverBatchHandoff handoff) {
  // Decode-before-publish: materialize the memoized command decode inside
  // the shared EncodedBatch rep while this thread still owns it exclusively;
  // the executor thread then only reads the memo (the ring's mutex hand-off
  // publishes it).
  handoff.batch.commands();
  ++pushed_;
  if (tracer_) tracer_->observe(depth_metric_, queue_depth());
  while (!batches_.try_push(handoff)) {
    // Ring full: the executor is behind. Keep draining completions while
    // waiting — never sleep on a non-empty completions ring, or a full one
    // would block the executor and deadlock the pair.
    if (drain_completions() == 0) std::this_thread::sleep_for(kWaitSlice);
  }
}

std::size_t ExecutorPipeline::drain_completions() {
  std::size_t posted = 0;
  while (std::optional<Completion> c = completions_.try_pop()) {
    world_.post(self_, c->reply_to, std::move(c->msg));
    ++posted;
  }
  return posted;
}

void ExecutorPipeline::flush() {
  while (executed_batches_.load(std::memory_order_acquire) < pushed_) {
    if (drain_completions() == 0) std::this_thread::sleep_for(kWaitSlice);
  }
  // The executor bumps executed_batches_ after pushing the batch's last
  // completion, so one final drain leaves nothing in flight.
  drain_completions();
}

void ExecutorPipeline::shutdown() {
  if (!executor_thread_.joinable()) return;
  flush();
  batches_.close();
  completions_.close();
  executor_thread_.join();
}

void ExecutorPipeline::executor_loop() {
  while (std::optional<DeliverBatchHandoff> item = batches_.pop()) {
    const consensus::Batch& cmds = item->batch.commands();  // pre-decoded memo
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      const workload::TxnRequest req = workload::decode_request(cmds[i].payload);
      // Delivery stamps are index + 1 (version 0 is reserved for loader
      // writes); the delta tracking keys dirty rows by these stamps.
      executor_.engine().set_state_version(item->base_index + i + 1);
      TxnExecutor::Execution exec = executor_.execute(req);
      if (stamp_commit_) {
        // Commit coordinates for read-only session floors (core/rosnap.hpp);
        // published to this thread by the ring hand-off of the first batch.
        exec.response.commit_group = commit_group_;
        exec.response.commit_pos = executor_.engine().state_version();
      }
      // charge() is a no-op on the TCP transport (the only pipelined one):
      // the real CPU was actually consumed, on this thread.
      if (tracer_) {
        tracer_->txn_execute(world_.now(), self_, req.client, req.seq,
                             item->base_index + i, exec.duplicate,
                             exec.response.committed, req.proc);
      }
      executed_txns_.fetch_add(1, std::memory_order_relaxed);
      Completion done{req.reply_to, workload::make_response_msg(exec.response)};
      (void)completions_.push(std::move(done));  // false only at shutdown
    }
    executed_batches_.fetch_add(1, std::memory_order_release);
    // Kick the consensus thread's idle hook to post the responses.
    world_.wake();
  }
}

}  // namespace shadow::core
