// Lock-free read-only transactions over the MVCC-lite versioned store.
//
// Read-only procedures (ShardRouter::ProcInfo::read_only) never enter a
// group's TOB log and never touch db::LockManager. The client is the RO
// coordinator:
//
//   single-shard  the client sends one `ro-read` (version 0 = "current")
//                 straight to a replica of the owning group; the replica
//                 serves it at its own applied position via Engine::read_at.
//
//   cross-shard   the client first runs a lightweight `ro-snap` exchange —
//                 one request per participant group — collecting each
//                 group's applied position S_g, its GC floor, its prepared-
//                 but-undecided 2PC set and a bounded ring of recent 2PC
//                 decisions. From the responses it picks the version vector
//                 {S_g} and *detects torn cuts*: a committed cross-shard
//                 transaction visible at one group (decide_pos <= S_g) but
//                 not guaranteed at another participant (still prepared
//                 there, or decided above that group's S_h) forces a re-snap
//                 of the lagging group. Once the cut is consistent the
//                 client fans out `ro-read`s pinned at exactly S_g per
//                 group; replicas serve them from the version chains without
//                 any locking.
//
// Soundness of the detect-and-retry rule: a 2PC decision is applied at a
// group only after that group delivered the prepare, so at any participant
// a transaction is (in log order) absent, then prepared, then decided. The
// snap carries three views of that progression — the prepared set, a
// bounded ring of recent decides (with their apply positions), and a
// per-client decided high-water map (`last_decided`). A decide missing from
// a group's ring is therefore never ambiguous: if the client's high-water
// covers its seq it was applied before the snap (merely evicted from the
// ring); if not, it has not reached that group at all — a stalled or
// failed-over log — and using the snap would tear the cut, so the client
// re-snaps that group until the decide lands.
//
// Replica-side errors are retryable classifications, not failures:
//   "ro-joining"  the replica is (re)joining and refuses service;
//   "ro-lagging"  the replica has not applied up to the requested version /
//                 the client's read-your-writes floor — rotate or retry;
//   "ro-stale"    the requested version fell below the replica's GC floor —
//                 the client re-snaps for a fresh cut;
//   "ro-moved"    forwarding hops exhausted mid-migration — restart;
//   "ro-split"    a group's share spans both local and migrated keys
//                 (impossible for the bundled workloads; defensive).
//
// Range migration: the donor group serves versioned reads pinned BELOW a
// committed flip from its version chains (the flip captured the donated
// rows' pre-images when it deleted them); reads at or above the flip — and
// "current" reads — forward to the owner (RangeMigrator::ro_forward_target).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/replica_common.hpp"
#include "core/router.hpp"
#include "net/transport.hpp"

namespace shadow::obs {
class Tracer;
}

namespace shadow::core {

class XsCoordinator;  // core/twopc.hpp
class RangeMigrator;  // core/migrate.hpp

inline constexpr const char* kRoSnapHeader = "ro-snap";
inline constexpr const char* kRoSnapRespHeader = "ro-snap-resp";
inline constexpr const char* kRoReadHeader = "ro-read";
inline constexpr const char* kRoReadRespHeader = "ro-read-resp";

/// Wire marker for read-only transactions, next to kXsBeginBit &c. (all
/// above kControlClientBit). RO requests are node-addressed — they never
/// enter a TOB log — but the marker keeps the client-id spaces disjoint and
/// lets traces/metrics classify RO traffic without payload inspection.
inline constexpr std::uint32_t kRoBeginBit = 0x58000000u;

/// A read forwarded donor → owner → ... across committed migrations gives up
/// after this many hops and answers "ro-moved" (the client restarts).
inline constexpr std::uint32_t kRoMaxForwardHops = 4;

/// Client → replica: report your group's snapshot coordinates.
struct RoSnapBody {
  std::uint32_t client = 0;  // kRoBeginBit | (real client & kXsClientMask)
  std::uint64_t seq = 0;
  GroupId group = 0;  // participant group this snap addresses
};

/// Replica → client: applied position + in-doubt 2PC state.
struct RoSnapRespBody {
  struct Decide {
    std::uint32_t client = 0;
    std::uint64_t seq = 0;
    std::uint64_t decide_pos = 0;
    std::uint8_t committed = 0;
    std::vector<std::uint32_t> participants;
  };
  GroupId group = 0;
  std::uint64_t seq = 0;       // echoes RoSnapBody::seq
  std::uint64_t position = 0;  // replica's applied position (engine state version)
  std::uint64_t floor = 0;     // oldest version still reconstructible (GC floor)
  std::uint8_t serving = 0;    // 0: (re)joining, pick another replica
  std::vector<std::pair<std::uint32_t, std::uint64_t>> prepared;  // in-doubt (client, seq)
  std::vector<Decide> decides;                                    // bounded ring, newest last
  /// Per xs client, the highest seq this group has APPLIED a decision for —
  /// the discriminator between "evicted from the bounded ring long ago"
  /// (last_decided covers the seq: included) and "has not reached this
  /// group's log yet" (it does not: the cut would tear, re-snap).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> last_decided;
};

/// Client → replica (or donor → owner when forwarded): execute the read-only
/// request's share for `group` at `version` (0 = the replica's current).
struct RoReadBody {
  workload::TxnRequest req;   // client field carries the kRoBeginBit wire id
  std::uint64_t version = 0;  // pinned read version; 0 = current
  std::uint64_t floor = 0;    // client's session floor (read-your-writes)
  GroupId group = 0;          // the participant group the client addressed
  std::uint32_t hops = 0;     // migration-forwarding hop count
};

/// Replica → client: the share's rows (or a retryable classification).
struct RoReadRespBody {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  GroupId group = 0;         // echoes RoReadBody::group (client matches on it)
  GroupId served_group = 0;  // the group that actually served (forwarding)
  std::uint64_t version = 0; // version the read executed at
  std::uint8_t ok = 0;
  std::string error;
  std::vector<db::Row> rows;
};

/// Per-replica server side of the RO protocol, owned by an SmrReplica in a
/// sharded deployment. Both handlers drain the executor pipeline before
/// touching the engine (the engine belongs to the executor thread until the
/// pipeline is quiescent), then read snapshots/version chains without locks.
class RoServer {
 public:
  struct Hooks {
    /// active && !joining && !rejoining on the owning replica.
    std::function<bool()> serving;
    /// Drains the owning replica's executor pipeline (no-op when serial).
    std::function<void()> flush;
    obs::Tracer* tracer = nullptr;
    ServerCosts costs;
  };

  RoServer(NodeId self, GroupId group, const RoutingView& view, TxnExecutor& executor,
           const XsCoordinator* xs, const RangeMigrator* mig, Hooks hooks);

  /// Node-addressed RO traffic. Returns true if consumed.
  bool on_message(net::NodeContext& ctx, const net::Message& msg);

 private:
  void serve_snap(net::NodeContext& ctx, const RoSnapBody& body, NodeId from);
  void serve_read(net::NodeContext& ctx, const RoReadBody& body);
  void answer_error(net::NodeContext& ctx, const RoReadBody& body, const char* error);
  void count(const char* metric) const;

  NodeId self_;
  GroupId group_;
  const RoutingView& view_;
  TxnExecutor& executor_;
  const XsCoordinator* xs_;
  const RangeMigrator* mig_;
  Hooks hooks_;
};

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::RoSnapBody> {
  static void encode(BytesWriter& w, const core::RoSnapBody& v) {
    w.u32(v.client);
    w.u64(v.seq);
    w.u32(v.group);
  }
  static core::RoSnapBody decode(BytesReader& r) {
    core::RoSnapBody v;
    v.client = r.u32();
    v.seq = r.u64();
    v.group = r.u32();
    return v;
  }
};

template <>
struct Codec<core::RoSnapRespBody> {
  static void encode(BytesWriter& w, const core::RoSnapRespBody& v) {
    w.u32(v.group);
    w.u64(v.seq);
    w.u64(v.position);
    w.u64(v.floor);
    w.u8(v.serving);
    Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::encode(w, v.prepared);
    w.u32(static_cast<std::uint32_t>(v.decides.size()));
    for (const auto& d : v.decides) {
      w.u32(d.client);
      w.u64(d.seq);
      w.u64(d.decide_pos);
      w.u8(d.committed);
      Codec<std::vector<std::uint32_t>>::encode(w, d.participants);
    }
    Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::encode(w, v.last_decided);
  }
  static core::RoSnapRespBody decode(BytesReader& r) {
    core::RoSnapRespBody v;
    v.group = r.u32();
    v.seq = r.u64();
    v.position = r.u64();
    v.floor = r.u64();
    v.serving = r.u8();
    v.prepared = Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::decode(r);
    v.decides.resize(r.u32());
    for (auto& d : v.decides) {
      d.client = r.u32();
      d.seq = r.u64();
      d.decide_pos = r.u64();
      d.committed = r.u8();
      d.participants = Codec<std::vector<std::uint32_t>>::decode(r);
    }
    v.last_decided = Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::RoReadBody> {
  static void encode(BytesWriter& w, const core::RoReadBody& v) {
    Codec<workload::TxnRequest>::encode(w, v.req);
    w.u64(v.version);
    w.u64(v.floor);
    w.u32(v.group);
    w.u32(v.hops);
  }
  static core::RoReadBody decode(BytesReader& r) {
    core::RoReadBody v;
    v.req = Codec<workload::TxnRequest>::decode(r);
    v.version = r.u64();
    v.floor = r.u64();
    v.group = r.u32();
    v.hops = r.u32();
    return v;
  }
};

template <>
struct Codec<core::RoReadRespBody> {
  static void encode(BytesWriter& w, const core::RoReadRespBody& v) {
    w.u32(v.client);
    w.u64(v.seq);
    w.u32(v.group);
    w.u32(v.served_group);
    w.u64(v.version);
    w.u8(v.ok);
    w.str(v.error);
    Codec<std::vector<db::Row>>::encode(w, v.rows);
  }
  static core::RoReadRespBody decode(BytesReader& r) {
    core::RoReadRespBody v;
    v.client = r.u32();
    v.seq = r.u64();
    v.group = r.u32();
    v.served_group = r.u32();
    v.version = r.u64();
    v.ok = r.u8();
    v.error = r.str();
    v.rows = Codec<std::vector<db::Row>>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
