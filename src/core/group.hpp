// First-class replication group.
//
// A ReplicationGroup is one total-order-broadcast service plus its
// co-located SMR database replicas: its own Paxos log and leader, its own
// snapshot/rejoin stream, its own adaptive batching loop, and its own
// metric/trace namespace. The classic ShadowDB-SMR cluster of
// core/shadowdb.hpp is exactly one group assembled with default
// GroupOptions — same node names, same creation order, same wire bytes as
// before the extraction. A sharded deployment builds N groups over one
// shared machine set, partitions the keyspace across them with a
// ShardRouter (core/router.hpp), and runs cross-shard transactions through
// the replicas' TOB-ordered 2PC engines (core/twopc.hpp).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pbr.hpp"
#include "core/router.hpp"
#include "core/smr.hpp"

namespace shadow::core {

struct ClusterOptions {
  std::size_t machines = 3;        // broadcast service size (Paxos: f = 1)
  std::size_t db_replicas = 2;     // active database group size
  std::size_t db_spares = 1;       // passive replacements
  tob::Protocol protocol = tob::Protocol::kPaxos;
  gpm::ExecutionTier tob_tier = gpm::ExecutionTier::kCompiled;
  std::size_t tob_batch_max = 64;
  // Multi-decree pipelining (PMMC's WINDOW): proposals in flight per node.
  // 1 maximizes batching, which wins when consensus work dominates.
  std::size_t tob_max_outstanding = 1;
  /// Load-adaptive proposal sizing (see TobConfig::adaptive_batching). When
  /// `smr.pipelined_execution` is also on, each TOB node's backlog probe is
  /// wired to its co-located replica's executor-pipeline queue depth.
  bool tob_adaptive_batching = false;
  std::size_t tob_batch_min = 1;

  /// Engine flavour per replica index (cycled). Empty → the paper's diverse
  /// default [H2, HSQLDB, Derby].
  std::vector<db::EngineTraits> engines;

  /// Populates each replica's database identically before the run.
  std::function<void(db::Engine&)> loader;

  std::shared_ptr<const workload::ProcedureRegistry> registry;
  ServerCosts server_costs{};
  PbrConfig pbr{};
  SmrConfig smr{};

  /// Optional structured trace recorder; propagated into the TOB service,
  /// its consensus module, and every replica (unless their sub-configs
  /// already carry one). Attach it to the World separately for network and
  /// crash events: `tracer.attach(world)`.
  obs::Tracer* tracer = nullptr;
};

db::EngineTraits engine_for_replica(const ClusterOptions& options, std::size_t index);

/// Per-group knobs layered on top of the shared ClusterOptions. The
/// defaults reproduce the classic single-group cluster exactly.
struct GroupOptions {
  GroupId id = 0;
  /// Node-name prefix ("g2." makes nodes "g2.tob0", "g2.db1", ...). Empty —
  /// the classic names — for single-group clusters.
  std::string name_prefix;
  /// Metric/trace namespace ("group.<id>." when sharded; empty — the
  /// classic names — otherwise).
  std::string metric_scope;
  /// Hosts to place this group's nodes on (tob<i> and db<i> share
  /// machines[i]). Empty → the group allocates its own machines; sharded
  /// clusters pass one shared set so every machine hosts one node of every
  /// group, mirroring the paper's co-location per group.
  std::vector<net::HostId> machines;
  /// Shared keyspace router. More than one shard arms each replica's 2PC
  /// engine and emits group_info trace events; null for classic clusters.
  const ShardRouter* router = nullptr;
  /// Restart epoch recorded in the group_info trace event, so merged traces
  /// from restarted processes stay unambiguous per group.
  std::uint64_t epoch = 0;
};

/// One assembled replication group (actives then spares, like the classic
/// cluster structs).
struct ReplicationGroup {
  GroupId id = 0;
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<SmrReplica>> replicas;
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  /// Submission targets for kTob clients.
  const std::vector<NodeId>& broadcast_targets() const { return tob_nodes; }
};

ReplicationGroup make_replication_group(net::Transport& world, const ClusterOptions& options,
                                        const GroupOptions& group = {});

/// N independent consensus groups sharing one machine set and one router.
struct ShardedSmrCluster {
  std::vector<net::HostId> machines;
  std::unique_ptr<ShardRouter> router;
  std::vector<ReplicationGroup> groups;
};

/// Builds `shards` groups over `options.machines` shared hosts. With
/// shards == 1 the node names and wire behavior match the classic cluster
/// (no prefix, no 2PC engine). `epoch` tags the group_info trace events.
ShardedSmrCluster make_sharded_smr_cluster(net::Transport& world, const ClusterOptions& options,
                                           std::size_t shards, std::uint64_t epoch = 0);

namespace detail {

/// Shared by the PBR/chain assemblies in shadowdb.cpp: builds the TOB
/// config and creates the service nodes (allocating machines when the group
/// does not share an existing set).
tob::TobConfig make_group_tob_config(net::Transport& world, const ClusterOptions& options,
                                     const GroupOptions& group,
                                     std::vector<net::HostId>& machines,
                                     std::vector<NodeId>& tob_nodes);

std::shared_ptr<db::Engine> make_loaded_engine(const ClusterOptions& options, std::size_t index);

}  // namespace detail

}  // namespace shadow::core
