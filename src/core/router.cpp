#include "core/router.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

ShardRouter::ShardRouter(std::size_t shards) : shards_(shards), targets_(shards) {
  SHADOW_REQUIRE(shards >= 1);
}

void ShardRouter::register_proc(const std::string& proc, ProcInfo info) {
  procs_[proc] = std::move(info);
}

void ShardRouter::install_default_extractors() {
  // Bank: accounts are the keyspace; transfer is the only multi-key (and so
  // the only potentially cross-shard) procedure. audit scans every account
  // and stays key-less: the write path pins it to group 0 (correct only for
  // shards == 1), while the read-only snapshot path fans it out to every
  // group via ro_shards_of.
  register_proc("bank.deposit", ProcInfo{"accounts", {0}});
  register_proc("bank.balance", ProcInfo{"accounts", {0}, /*read_only=*/true});
  register_proc("bank.transfer", ProcInfo{"accounts", {0, 1}});
  register_proc("bank.balance2", ProcInfo{"accounts", {0, 1}, /*read_only=*/true});
  register_proc("bank.audit", ProcInfo{"accounts", {}, /*read_only=*/true});
  // TPC-C: partitioned by warehouse (params[0] in every procedure); all five
  // procedures are single-warehouse here, so TPC-C never crosses shards.
  register_proc("tpcc.new_order", ProcInfo{"warehouse", {0}});
  register_proc("tpcc.payment", ProcInfo{"warehouse", {0}});
  register_proc("tpcc.order_status", ProcInfo{"warehouse", {0}});
  register_proc("tpcc.delivery", ProcInfo{"warehouse", {0}});
  register_proc("tpcc.stock_level", ProcInfo{"warehouse", {0}});
}

const ShardRouter::ProcInfo* ShardRouter::proc_info(const std::string& proc) const {
  const auto it = procs_.find(proc);
  return it == procs_.end() ? nullptr : &it->second;
}

std::vector<std::int64_t> ShardRouter::keys_of(const workload::TxnRequest& req) const {
  std::vector<std::int64_t> keys;
  if (const ProcInfo* info = proc_info(req.proc)) {
    for (const std::size_t idx : info->key_params) {
      SHADOW_CHECK(idx < req.params.size());
      keys.push_back(req.params[idx].as_int());
    }
  }
  return keys;
}

std::vector<GroupId> ShardRouter::shards_of(const workload::TxnRequest& req) const {
  std::vector<GroupId> groups;
  for (const std::int64_t key : keys_of(req)) groups.push_back(shard_of_key(key));
  if (groups.empty()) groups.push_back(0);  // key-less procedures pin to group 0
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

std::vector<GroupId> ShardRouter::ro_shards_of(const workload::TxnRequest& req) const {
  std::vector<GroupId> groups;
  for (const std::int64_t key : keys_of(req)) groups.push_back(shard_of_key(key));
  if (groups.empty()) {
    for (std::size_t g = 0; g < shards_; ++g) groups.push_back(static_cast<GroupId>(g));
    return groups;
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

bool ShardRouter::cross_shard(const workload::TxnRequest& req) const {
  return shards_of(req).size() > 1;
}

GroupId ShardRouter::coordinator_of(const workload::TxnRequest& req) const {
  return shards_of(req).front();
}

void ShardRouter::set_group_targets(GroupId g, std::vector<NodeId> tob,
                                    std::vector<NodeId> replicas) {
  SHADOW_REQUIRE(g < targets_.size());
  targets_[g] = Targets{std::move(tob), std::move(replicas)};
}

const std::vector<NodeId>& ShardRouter::tob_targets(GroupId g) const {
  SHADOW_REQUIRE(g < targets_.size());
  return targets_[g].tob;
}

const std::vector<NodeId>& ShardRouter::replica_targets(GroupId g) const {
  SHADOW_REQUIRE(g < targets_.size());
  return targets_[g].replicas;
}

std::vector<GroupId> RoutingView::shards_of(const workload::TxnRequest& req) const {
  const ShardRouter::ProcInfo* info = base_->proc_info(req.proc);
  const std::string table = info != nullptr ? info->table : std::string();
  std::vector<GroupId> groups;
  for (const std::int64_t key : base_->keys_of(req)) groups.push_back(shard_of(table, key));
  if (groups.empty()) groups.push_back(0);  // key-less procedures pin to group 0
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

const std::vector<NodeId>& ShardRouter::route(const workload::TxnRequest& req) const {
  const std::vector<GroupId> groups = shards_of(req);
  routed_.fetch_add(1, std::memory_order_relaxed);
  if (groups.size() > 1) cross_routed_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr) {
    tracer_->count("router.txns_total");
    if (groups.size() > 1) tracer_->count("router.cross_shard");
  }
  return tob_targets(groups.front());
}

}  // namespace shadow::core
