// ShadowDB — state machine replication (Sec. III-B).
//
// All transactions are ordered by the total order broadcast service: the
// client broadcasts T, every database replica executes T in delivery order
// and answers, and the client keeps the first answer. A replica crash is
// transparent while at least one replica survives. On suspicion, a replica
// snapshots its database and broadcasts a reconfiguration request (carrying
// the last ordered sequence number, not the snapshot); the replacement
// replica fetches the snapshot from the proposer and buffers deliveries that
// arrive while the transfer is in progress.
//
// Replicas are co-located with the broadcast service processes (same
// simulated machine), so transaction execution competes with Paxos for CPU —
// the effect that bounds ShadowDB-SMR's micro-benchmark throughput in
// Fig. 9(a).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/pipeline.hpp"
#include "core/replica_common.hpp"
#include "core/router.hpp"
#include "repl/state_transfer.hpp"
#include "tob/tob.hpp"

namespace shadow::core {

class XsCoordinator;  // core/twopc.hpp
class RangeMigrator;  // core/migrate.hpp
class RoServer;       // core/rosnap.hpp
class RoutingView;    // core/router.hpp

inline constexpr const char* kSmrReconfigProc = "::smr-reconfig";
/// Crash-restart rejoin request: params = [joiner node, snapshot proposer,
/// joiner's engine state version (0: no usable base), accepts-v2 flag]. The
/// last two are optional on the wire for robustness; every current sender
/// includes them.
inline constexpr const char* kSmrRejoinProc = "::smr-rejoin";
inline constexpr const char* kSnapRequestHeader = "smr-snap-req";
inline constexpr const char* kSnapBeginHeader = "smr-snap-begin";
inline constexpr const char* kSnapBatchHeader = "smr-snap-batch";
inline constexpr const char* kSnapDoneHeader = "smr-snap-done";
// v2 snapshot stream (repl/wire.hpp): compressed and/or incremental, used
// for crash-restart rejoin. Node-addressed, so the headers are protocol-free.
inline constexpr const char* kSnapBegin2Header = "repl-snap-begin2";
inline constexpr const char* kSnapBatch2Header = "repl-snap-batch2";
inline constexpr const char* kSnapDelete2Header = "repl-snap-del2";
inline constexpr const char* kSnapDone2Header = "repl-snap-done2";
inline constexpr const char* kSmrDeliverHeader = "smr-deliver";
inline constexpr const char* kSmrDeliverBatchHeader = "smr-deliver-batch";

/// Control commands (reconfigurations) are broadcast under synthetic client
/// ids with this bit set, so the pipelined delivery path can spot them in a
/// decided batch without decoding any transaction payloads.
inline constexpr std::uint32_t kControlClientBit = 0x40000000u;
/// Rejoin requests use their own id space (still above kControlClientBit, so
/// the pipelined path spots them): kRejoinClientBit + node id, with a
/// caller-supplied sequence number that must be unique per restart
/// incarnation (wall-clock µs in the real cluster).
inline constexpr std::uint32_t kRejoinClientBit = 0x50000000u;

struct SmrConfig {
  net::Time hb_period = 1000000;        // 1 s heartbeats between replicas
  net::Time suspect_timeout = 10000000; // 10 s detection (paper's Fig. 10 setting)
  std::size_t snapshot_batch_bytes = 50 * 1024;
  bool enable_failure_detection = true;
  /// Execute transactions on a dedicated DB executor thread, fed decided
  /// batches through a bounded SPSC ring (see core/pipeline.hpp). Only
  /// meaningful on a transport whose event loop may run concurrently with
  /// other threads (TcpTransport in pipelined mode); the simulator stays
  /// single-threaded and must leave this off.
  bool pipelined_execution = false;
  std::size_t pipeline_ring_capacity = 256;  // decided batches in flight
  /// Block-compress v2 snapshot frames (rejoin state transfer). Off by
  /// default: compression trades sender/receiver CPU for wire volume.
  bool transfer_compression = false;
  obs::Tracer* tracer = nullptr;        // optional structured trace recorder

  /// Sharded deployments (core/group.hpp): which replication group this
  /// replica belongs to and the shared router. A router with more than one
  /// shard arms the replica's cross-shard 2PC engine (core/twopc.hpp);
  /// classic single-group clusters leave it null and behave exactly as
  /// before.
  const ShardRouter* router = nullptr;
  GroupId group = 0;
  /// Prefix for this replica's pipeline metrics ("group.<id>." when sharded,
  /// empty — the classic names — otherwise).
  std::string metric_scope;
};

/// One SMR database replica. `tob` must be the co-located broadcast-service
/// node (same machine); the replica subscribes to its local deliveries.
class SmrReplica {
 public:
  SmrReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
             std::shared_ptr<db::Engine> engine,
             std::shared_ptr<const workload::ProcedureRegistry> registry,
             std::vector<NodeId> replica_group, std::vector<NodeId> spares,
             SmrConfig config = {}, ServerCosts costs = {});
  ~SmrReplica();  // out of line: XsCoordinator/RangeMigrator are incomplete here

  NodeId node() const { return self_; }
  bool active() const { return active_; }
  std::uint64_t executed() const { return executor_.executed_count(); }
  std::uint64_t state_digest() const { return executor_.engine().state_digest(); }
  const std::vector<NodeId>& group() const { return group_; }
  db::Engine& engine() { return executor_.engine(); }

  /// Pre-provisioned spare: knows the group but is passive until a
  /// reconfiguration names it. Spares watch deliveries through their
  /// co-located TOB node from the start (they discard transaction commands
  /// until activated).
  void make_spare() { active_ = false; }

  /// Pipelined mode only: decided batches handed to the executor thread but
  /// not yet executed (what adaptive batching probes as backlog).
  std::size_t pipeline_depth() const { return pipeline_ ? pipeline_->queue_depth() : 0; }

  /// Pipelined mode only: block until the executor thread has applied every
  /// delivered batch and all responses are posted. Benchmarks and tests call
  /// this before reading executed()/state_digest() while the loop is paused.
  void quiesce() {
    if (pipeline_) pipeline_->flush();
  }

  /// Crash-restart recovery: a freshly restarted process calls this on its
  /// own (reconstructed, empty) replica. The replica pauses its co-located
  /// TOB node, broadcasts a ::smr-rejoin request through `via_tob` (retrying
  /// until answered), and on `proposer`'s snapshot stream restores the
  /// database, resumes the TOB node at the snapshot's slot/index, and goes
  /// active. `seq` must be unique across this node's restart incarnations
  /// (the cluster deduplicates rejoin requests by exact (client, seq) key).
  void start_rejoin(NodeId via_tob, NodeId proposer, RequestSeq seq);

 private:
  void on_deliver(net::NodeContext& ctx, Slot slot, std::uint64_t index,
                  const tob::Command& cmd);
  void on_deliver_batch(net::NodeContext& ctx, Slot slot, std::uint64_t base_index,
                        const consensus::EncodedBatch& batch);
  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_heartbeat_tick(net::NodeContext& ctx);
  void handle_reconfig(net::NodeContext& ctx, const workload::TxnRequest& req, std::uint64_t index);
  void handle_rejoin(net::NodeContext& ctx, const workload::TxnRequest& req, Slot slot,
                     std::uint64_t index);
  void send_rejoin_request(net::NodeContext& ctx);
  /// Post-dispatch delivery: through the 2PC engine when armed, else (or for
  /// uninvolved transactions) the normal execution path.
  void apply_delivered(net::NodeContext& ctx, std::uint64_t index,
                       const workload::TxnRequest& req);
  void execute_txn(net::NodeContext& ctx, std::uint64_t index, const workload::TxnRequest& req);
  /// Streams the database to `to`. v1 (spare promotion, pinned wire format)
  /// or v2 (rejoin: optionally compressed, delta when `delta_since` is a
  /// version our dirty tracking still covers).
  void send_snapshot_stream(net::NodeContext& ctx, NodeId to, const ReplSnapDoneBody& done,
                            std::optional<std::uint64_t> delta_since = std::nullopt,
                            bool v2 = false);
  /// Shared epilogue of both stream versions' `done` handling.
  void finish_join(net::NodeContext& ctx, const ReplSnapDoneBody& done, NodeId from);
  /// Stamps the engine's state version for the command at `index`,
  /// monotonically (parked 2PC transactions drain at a later delivery and
  /// must not move the version backwards).
  void stamp_state_version(std::uint64_t index);

  net::Transport& world_;
  NodeId self_;
  tob::TobNode& tob_;
  TxnExecutor executor_;
  SmrConfig config_;
  std::vector<NodeId> group_;    // current active replicas
  std::vector<NodeId> spares_;   // pre-provisioned replacements
  bool active_ = true;
  std::uint64_t delivered_index_ = 0;  // last applied global delivery index

  // Failure detection.
  std::map<std::uint32_t, net::Time> last_heard_;
  std::set<std::uint32_t> proposed_removals_;
  ClientId reconfig_client_id_;
  RequestSeq reconfig_seq_ = 0;

  // Joining state (replacement replica).
  bool joining_ = false;
  std::uint64_t join_from_index_ = 0;
  std::deque<std::pair<std::uint64_t, workload::TxnRequest>> buffered_;  // (index, request)
  std::uint64_t buffered_from_ = 0;

  // Crash-restart rejoin state (see start_rejoin). `seen_control_keys_` is
  // maintained by every replica: the exact (client, seq) keys of delivered
  // control commands, shipped with rejoin snapshots so the joiner's TOB node
  // deduplicates them (control clients get fresh ids per incarnation, so the
  // per-client floor cannot cover them).
  bool rejoining_ = false;
  NodeId rejoin_via_{};
  NodeId rejoin_proposer_{};
  ClientId rejoin_client_id_{};
  RequestSeq rejoin_seq_ = 0;
  std::uint64_t rejoin_base_version_ = 0;  // engine version presented for a delta
  bool rejoin_requested_ = false;          // a request went out for the current seq
  bool rejoin_stream_started_ = false;     // a begin arrived for the current seq
  std::vector<std::pair<std::uint32_t, RequestSeq>> rejoin_floor_;
  std::optional<net::TimerId> rejoin_timer_;
  std::vector<std::pair<std::uint32_t, RequestSeq>> seen_control_keys_;

  // Inbound snapshot stream state (shared state-transfer receiver).
  repl::StateTransfer::Receiver snap_rx_;

  // Sharded-mode engines, armed only when config_.router names more than
  // one shard. All their state transitions happen on the consensus thread
  // inside the serial delivery path. view_ is this replica's own picture of
  // the partition (base router + overrides committed by its delivery order);
  // mig_ drives range migrations and declares before xs_ so the 2PC engine's
  // range-block hook outlives nothing it points at.
  std::unique_ptr<RoutingView> view_;
  std::unique_ptr<RangeMigrator> mig_;
  std::unique_ptr<XsCoordinator> xs_;
  std::unique_ptr<RoServer> ro_;  // lock-free snapshot reads (core/rosnap.hpp)

  // Pipelined mode: the DB executor stage. Declared last so its destructor
  // (which flushes and joins the executor thread) runs while every member
  // it references is still alive.
  std::unique_ptr<ExecutorPipeline> pipeline_;
};

}  // namespace shadow::core
