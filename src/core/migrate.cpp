#include "core/migrate.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/smr.hpp"  // kControlClientBit
#include "obs/trace.hpp"
#include "repl/state_transfer.hpp"
#include "tob/tob.hpp"

namespace shadow::core {

namespace {

constexpr net::Time kMigTickPeriod = 500000;  // pull/ready/commit retry sweep, 500 ms
constexpr std::uint32_t kMigMaxCommitResends = 2;

RangeSpec spec_from_params(const std::vector<db::Value>& p) {
  RangeSpec spec;
  spec.mid = static_cast<std::uint64_t>(p[0].as_int());
  spec.table = p[1].as_string();
  spec.lo = p[2].as_int();
  spec.hi = p[3].as_int();
  spec.from = static_cast<GroupId>(p[4].as_int());
  spec.to = static_cast<GroupId>(p[5].as_int());
  if (p.size() >= 7) spec.donor = NodeId{static_cast<std::uint32_t>(p[6].as_int())};
  return spec;
}

std::vector<db::Value> params_from_spec(const RangeSpec& spec) {
  return {db::Value(static_cast<std::int64_t>(spec.mid)),
          db::Value(spec.table),
          db::Value(spec.lo),
          db::Value(spec.hi),
          db::Value(static_cast<std::int64_t>(spec.from)),
          db::Value(static_cast<std::int64_t>(spec.to)),
          db::Value(static_cast<std::int64_t>(spec.donor.value))};
}

}  // namespace

workload::TxnRequest make_split_request(const RangeSpec& spec) {
  workload::TxnRequest req;
  req.client = ClientId{kMigAdminClientBit | static_cast<std::uint32_t>(spec.mid & kMigIdMask)};
  req.seq = 1;
  req.proc = kMigSplitProc;
  req.params = params_from_spec(spec);
  return req;
}

RangeMigrator::RangeMigrator(net::Transport& world, NodeId self, GroupId group,
                             RoutingView& view, TxnExecutor& executor, XsCoordinator* xs,
                             const std::vector<NodeId>* group_members, const bool* active,
                             Config cfg)
    : world_(world),
      self_(self),
      group_(group),
      view_(view),
      executor_(executor),
      xs_(xs),
      group_members_(group_members),
      active_(active),
      cfg_(std::move(cfg)) {
  world_.schedule_timer_for_node(self_, world_.now() + kMigTickPeriod,
                                 [this](net::NodeContext& ctx) { on_tick(ctx); });
}

void RangeMigrator::count(const char* metric, std::uint64_t n) const {
  if (cfg_.tracer != nullptr) {
    for (std::uint64_t i = 0; i < n; ++i) cfg_.tracer->count(metric);
  }
}

bool RangeMigrator::on_deliver(net::NodeContext& ctx, std::uint64_t index,
                               const workload::TxnRequest& req) {
  (void)index;
  if (req.proc == kMigSplitProc) {
    handle_split(ctx, req);
    return true;
  }
  if (req.proc == kMigReadyProc) {
    handle_ready(ctx, req);
    return true;
  }
  if (req.proc == kMigCommitProc) {
    handle_commit(ctx, req);
    return true;
  }
  return false;
}

void RangeMigrator::handle_split(net::NodeContext& ctx, const workload::TxnRequest& req) {
  (void)ctx;
  SHADOW_CHECK(req.params.size() >= 6);
  const RangeSpec spec = spec_from_params(req.params);
  if (spec.from == spec.to || spec.lo >= spec.hi) return;
  if (spec.from >= view_.shard_count() || spec.to >= view_.shard_count()) return;
  if (migrations_.count(spec.mid) != 0) return;  // stale rebroadcast
  Migration m;
  m.spec = spec;
  migrations_.emplace(spec.mid, std::move(m));
  count("mig.freezes");
  // The pull handshake is timer-driven (on_tick): a split delivered into a
  // to-replica starts pulling at the next sweep.
}

void RangeMigrator::handle_ready(net::NodeContext& ctx, const workload::TxnRequest& req) {
  SHADOW_CHECK(req.params.size() >= 2);
  const auto mid = static_cast<std::uint64_t>(req.params[0].as_int());
  const auto node = static_cast<std::uint32_t>(req.params[1].as_int());
  const auto it = migrations_.find(mid);
  if (it == migrations_.end() || it->second.committed) return;
  it->second.ready.insert(node);
  maybe_commit(ctx, it->second);
}

void RangeMigrator::maybe_commit(net::NodeContext& ctx, Migration& m) {
  // Only the receiving group decides: commit when the delivered ready set
  // covers every CURRENT member the heartbeat view calls live, or a
  // majority of the membership. The first clause keeps a healthy group
  // lossless (nobody gets left behind while merely seconds slower); the
  // second breaks the deadlocks the first cannot see: a crashed member that
  // was never reconfigured out (replacement needs a free spare and the
  // one-shot removal proposal surviving the wire), or a member whose
  // heartbeats flow — they travel replica-to-replica — while its delivery
  // stream is stalled, so it will never pull, never broadcast ready, and
  // never look dead. Whoever a majority commit leaves behind recovers via
  // resync at its own commit delivery (handle_commit). Re-evaluated on
  // reconfigurations and every tick.
  if (m.committed || group_ != m.spec.to) return;
  std::size_t ready_members = 0;
  bool live_covered = true;
  for (const NodeId n : *group_members_) {
    if (m.ready.count(n.value) != 0) {
      ++ready_members;
    } else if (!cfg_.peer_live || cfg_.peer_live(n)) {
      live_covered = false;
    }
  }
  if (!live_covered && ready_members * 2 <= group_members_->size()) return;
  broadcast_commit(ctx, m);
}

void RangeMigrator::handle_commit(net::NodeContext& ctx, const workload::TxnRequest& req) {
  SHADOW_CHECK(req.params.size() >= 6);
  const RangeSpec spec = spec_from_params(req.params);
  // Already flipped: a resync restored this override through the snapshot
  // rider (which drops committed migrations from the records), and this is
  // the commit's delivery arriving through the post-restore drain. Without
  // this guard the unknown mid would synthesize a record and "apply" an
  // empty buffer over already-correct rows.
  for (const RangeOverride& o : view_.overrides()) {
    if (o.table == spec.table && o.lo == spec.lo && o.hi == spec.hi && o.from == spec.from &&
        o.to == spec.to) {
      return;
    }
  }
  auto it = migrations_.find(spec.mid);
  if (it == migrations_.end()) {
    // The admin's split broadcast to this group was lost and only the commit
    // landed: synthesize the record (this group never froze, which is safe —
    // it owned none of the range's keys before OR after the flip unless it
    // is the to-group, where the missing buffer is counted below).
    Migration m;
    m.spec = spec;
    it = migrations_.emplace(spec.mid, std::move(m)).first;
  }
  Migration& m = it->second;
  if (m.committed) return;  // stale rebroadcast
  m.committed = true;
  m.receiving = false;
  db::Engine& engine = executor_.engine();
  if (group_ == m.spec.from) {
    // Drop the donated rows while the view still maps them here (the
    // override below flips ownership): the donor's digest of owned state
    // then matches a group that never held the range.
    if (cfg_.flush) cfg_.flush();
    const RangeSpec& s = m.spec;
    const std::size_t removed = engine.delete_where_key(s.table, [&](const db::Key& key) {
      if (key.empty()) return false;
      const std::int64_t k = key[0].as_int();
      return k >= s.lo && k < s.hi && view_.shard_of(s.table, k) == s.from;
    });
    count("mig.rows_out", removed);
  }
  if (group_ == m.spec.to) {
    if (!m.buffered) {
      // The group committed without this replica (majority commit over a
      // dead-looking or stalled member, or a promotion after coverage was
      // reached). The donor's copy of the range is already gone, so no pull
      // can fill the buffer any more — the only consistent continuation is
      // a full resync from a peer, whose snapshot carries the post-commit
      // rows and this override in the rejoin rider.
      count("mig.buffer_miss");
      if (cfg_.resync) {
        cfg_.resync();
        return;
      }
      // No resync hook mounted: half-apply and leave the gap on the books.
    }
    if (cfg_.flush) cfg_.flush();
    std::uint64_t cost = 0;
    std::uint64_t rows = 0;
    for (const db::Engine::SnapshotBatch& batch : m.batches) {
      cost += engine.restore_upsert_batch(batch);
      rows += batch.rows;
    }
    ctx.charge(cost);
    count("mig.rows_in", rows);
  }
  m.batches.clear();
  RangeOverride flip{m.spec.table, m.spec.lo, m.spec.hi, m.spec.from, m.spec.to};
  // Versioned reads pinned below this position still reconstruct the donated
  // rows from the donor's version chains (delete_where_key captured their
  // pre-images at this very version); at or above it the owner serves.
  committed_flips_.emplace_back(flip, executor_.engine().state_version());
  view_.install(std::move(flip));
  count("mig.commits");
}

std::optional<GroupId> RangeMigrator::ro_forward_target(const std::string& table,
                                                        std::int64_t key,
                                                        std::uint64_t version) const {
  const GroupId owner = view_.shard_of(table, key);
  if (owner == group_) return std::nullopt;
  if (version != 0) {
    for (const auto& [o, flip_version] : committed_flips_) {
      if (o.from == group_ && o.table == table && key >= o.lo && key < o.hi &&
          version < flip_version) {
        return std::nullopt;  // pinned below the flip: serve from history here
      }
    }
  }
  return owner;
}

bool RangeMigrator::frozen(const std::string& table,
                           const std::vector<std::int64_t>& keys) const {
  for (const auto& [mid, m] : migrations_) {
    if (m.committed || m.spec.table != table) continue;
    for (const std::int64_t k : keys) {
      if (k >= m.spec.lo && k < m.spec.hi) return true;
    }
  }
  return false;
}

bool RangeMigrator::divert(net::NodeContext& ctx, const workload::TxnRequest& req) {
  if (req.client.value >= kControlClientBit) return false;
  if (migrations_.empty()) return false;  // no migration ever touched this deployment
  const ShardRouter::ProcInfo* info = view_.proc_info(req.proc);
  const std::string table = info != nullptr ? info->table : std::string();
  const std::vector<std::int64_t> keys = view_.keys_of(req);
  if (frozen(table, keys)) {
    // Retryable abort, NOT recorded in the dedup table: the client resubmits
    // with a fresh seq once the range lands.
    count("mig.frozen_aborts");
    workload::TxnResponse resp{req.client, req.seq, false, {}, "range-frozen"};
    ctx.send(req.reply_to, workload::make_response_msg(resp));
    return true;
  }
  const std::vector<GroupId> owners = view_.shards_of(req);
  if (std::find(owners.begin(), owners.end(), group_) != owners.end()) return false;
  // Misrouted: the client routed by the base partition function but the keys
  // migrated away. A retry of a transaction that already executed owner-side
  // could re-execute there (the begin was deduplicated HERE, not there), so
  // answer retries from our dedup table first — it was merged from the
  // pre-migration history at every replica of this group.
  const auto& dedup = executor_.dedup_table();
  if (const auto it = dedup.find(req.client.value);
      it != dedup.end() && req.seq <= it->second.first) {
    ctx.send(req.reply_to, workload::make_response_msg(it->second.second));
    return true;
  }
  ClientId wire = req.client;
  if (owners.size() > 1) {
    // Keep the cross-shard marker on the forwarded broadcast so the owner's
    // pipelined path flushes for it without decoding.
    wire = ClientId{kXsBeginBit | (req.client.value & kXsClientMask)};
  }
  count("mig.forwards");
  broadcast_into(ctx, owners.front(), wire, req.seq, req);
  return true;
}

bool RangeMigrator::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kMigPullHeader) {
    serve_pull(ctx, net::msg_body<MigPullBody>(msg).mid, msg.from);
    return true;
  }
  if (msg.header == kMigSnapBeginHeader) {
    const auto& begin = net::msg_body<repl::SnapBegin2Body>(msg);
    const auto it = migrations_.find(begin.tag);
    if (it == migrations_.end()) return true;
    Migration& m = it->second;
    if (m.committed || m.buffered || group_ != m.spec.to) return true;
    m.receiving = true;
    m.frames_seen = 0;
    m.batches.clear();
    return true;
  }
  if (msg.header == kMigSnapBatchHeader) {
    const auto& body = net::msg_body<repl::SnapBatch2Body>(msg);
    const auto it = migrations_.find(body.tag);
    if (it == migrations_.end()) return true;
    Migration& m = it->second;
    if (!m.receiving) return true;
    db::Engine::SnapshotBatch batch;
    if (!repl::StateTransfer::unwrap_batch(body, batch)) {
      m.receiving = false;  // malformed frame; the tick re-pulls
      m.batches.clear();
      return true;
    }
    m.batches.push_back(std::move(batch));
    ++m.frames_seen;
    return true;
  }
  if (msg.header == kMigSnapDeleteHeader) {
    // Filtered migration streams are always full-mode; a delete frame still
    // counts toward the frame total for gap detection.
    const auto it = migrations_.find(net::msg_body<repl::SnapDelete2Body>(msg).tag);
    if (it != migrations_.end() && it->second.receiving) ++it->second.frames_seen;
    return true;
  }
  if (msg.header == kMigSnapDoneHeader) {
    const auto& done = net::msg_body<repl::SnapDone2Body>(msg);
    const auto it = migrations_.find(done.tag);
    if (it == migrations_.end()) return true;
    Migration& m = it->second;
    if (!m.receiving) return true;
    m.receiving = false;
    if (m.frames_seen != done.frames) {
      m.batches.clear();  // checksum-dropped frame; the tick re-pulls
      return true;
    }
    m.buffered = true;
    broadcast_ready(ctx, m);
    maybe_commit(ctx, m);
    return true;
  }
  return false;
}

void RangeMigrator::serve_pull(net::NodeContext& ctx, std::uint64_t mid, NodeId to) {
  const auto it = migrations_.find(mid);
  if (it == migrations_.end() || it->second.committed) return;
  const RangeSpec spec = it->second.spec;  // copy: the filter outlives the map lookup
  if (group_ != spec.from || !*active_) return;
  // Serve only once every in-flight 2PC share on the range has decided: new
  // prepares vote NO against the freeze, so a clear range stays clear and
  // the streamed state is final. The puller retries until then.
  if (xs_ != nullptr && !xs_->range_clear(spec.table, spec.lo, spec.hi)) return;
  if (cfg_.flush) cfg_.flush();
  repl::StateTransfer::SendV2 s;
  s.headers = {kMigSnapBeginHeader, kMigSnapBatchHeader, kMigSnapDoneHeader,
               kMigSnapDeleteHeader};
  s.batch_bytes = cfg_.batch_bytes;
  s.done_carries_rows = true;
  s.tag = mid;
  s.compress = cfg_.compress;
  const RoutingView& view = view_;
  s.filter = [spec, &view](const std::string& table, const db::Key& key) {
    if (table != spec.table || key.empty()) return false;
    const std::int64_t k = key[0].as_int();
    return k >= spec.lo && k < spec.hi && view.shard_of(table, k) == spec.from;
  };
  s.tracer = cfg_.tracer;
  const repl::SendStats stats =
      repl::StateTransfer::send_v2(ctx, executor_.engine(), to, std::move(s));
  count("mig.streams_served");
  count("mig.stream_rows", stats.rows);
}

void RangeMigrator::send_pull(net::NodeContext& ctx, Migration& m) {
  const std::vector<NodeId>& donors = view_.base().replica_targets(m.spec.from);
  if (donors.empty()) return;
  // Rotate over the donor group's base replica set, starting at the spec's
  // preferred donor: every replica holds the identical frozen range, so any
  // of them can serve (which is the whole donor-death story).
  std::size_t start = 0;
  for (std::size_t i = 0; i < donors.size(); ++i) {
    if (donors[i] == m.spec.donor) start = i;
  }
  const NodeId target = donors[(start + m.pull_attempts) % donors.size()];
  ++m.pull_attempts;
  ctx.send(target, net::make_msg(kMigPullHeader, MigPullBody{m.spec.mid}));
}

void RangeMigrator::broadcast_ready(net::NodeContext& ctx, const Migration& m) {
  workload::TxnRequest req;
  req.client = ClientId{kMigReadyClientBit | (self_.value & kMigIdMask)};
  req.seq = m.spec.mid;
  req.reply_to = self_;
  req.proc = kMigReadyProc;
  req.params = {db::Value(static_cast<std::int64_t>(m.spec.mid)),
                db::Value(static_cast<std::int64_t>(self_.value))};
  broadcast_into(ctx, group_, req.client, req.seq, req);
}

void RangeMigrator::broadcast_commit(net::NodeContext& ctx, const Migration& m) {
  workload::TxnRequest req;
  req.client =
      ClientId{kMigCommitClientBit | static_cast<std::uint32_t>(m.spec.mid & kMigIdMask)};
  req.seq = 1;
  req.reply_to = self_;
  req.proc = kMigCommitProc;
  req.params = params_from_spec(m.spec);
  for (GroupId g = 0; g < view_.shard_count(); ++g) {
    broadcast_into(ctx, g, req.client, req.seq, req);
  }
}

void RangeMigrator::broadcast_into(net::NodeContext& ctx, GroupId g, ClientId client,
                                   RequestSeq seq, const workload::TxnRequest& req) {
  const std::vector<NodeId>& tobs = view_.tob_targets(g);
  SHADOW_CHECK(!tobs.empty());
  // Rotate the frontend per attempt: a fixed choice would black-hole every
  // retry of the same broadcast into the same crashed TOB node.
  const NodeId target = tobs[(self_.value + bcast_attempts_++) % tobs.size()];
  tob::BroadcastBody body{tob::Command{client, seq, workload::encode_request(req)}};
  ctx.send(target, net::make_msg(tob::kBroadcastHeader, std::move(body)));
}

void RangeMigrator::on_membership_change(net::NodeContext& ctx) {
  for (auto& [mid, m] : migrations_) maybe_commit(ctx, m);
}

bool RangeMigrator::needs_serial() const {
  for (const auto& [mid, m] : migrations_) {
    if (!m.committed) return true;
  }
  for (const RangeOverride& o : view_.overrides()) {
    if (o.from == group_) return true;
  }
  return false;
}

void RangeMigrator::on_tick(net::NodeContext& ctx) {
  if (*active_) {
    for (auto& [mid, m] : migrations_) {
      if (m.committed) continue;
      if (group_ == m.spec.to && !m.buffered) {
        if (m.receiving && m.frames_seen != m.frames_last_tick) {
          m.frames_last_tick = m.frames_seen;  // stream making progress
        } else {
          // Idle or stalled (donor crashed mid-stream, pull lost): re-pull
          // from the next donor replica.
          m.receiving = false;
          m.batches.clear();
          m.frames_last_tick = 0;
          send_pull(ctx, m);
        }
      }
      if (group_ == m.spec.to && m.buffered && m.ready.count(self_.value) == 0) {
        broadcast_ready(ctx, m);  // lost on the wire; TOB dedup makes this free
      }
      maybe_commit(ctx, m);
    }
    // A commit broadcast to another group can be lost with nobody retrying
    // (our own delivery already happened): resend a bounded number of times.
    for (auto& [mid, m] : migrations_) {
      if (m.committed && group_ == m.spec.to && m.commit_resends < kMigMaxCommitResends) {
        ++m.commit_resends;
        broadcast_commit(ctx, m);
      }
    }
  }
  ctx.set_timer(kMigTickPeriod, [this](net::NodeContext& c) { on_tick(c); });
}

MigSnapBody RangeMigrator::snapshot() const {
  MigSnapBody body;
  body.overrides = view_.overrides();
  for (const auto& [mid, m] : migrations_) {
    if (m.committed) continue;
    MigSnapBody::Inflight e;
    e.spec = m.spec;
    e.ready.assign(m.ready.begin(), m.ready.end());
    e.buffered = m.buffered ? 1 : 0;
    e.batches = m.batches;
    body.inflight.push_back(std::move(e));
  }
  return body;
}

void RangeMigrator::restore(net::NodeContext& ctx, const MigSnapBody& body) {
  view_.reset_overrides(body.overrides);
  migrations_.clear();
  committed_flips_.clear();  // see the member comment: forward-everything is safe
  for (const auto& e : body.inflight) {
    Migration m;
    m.spec = e.spec;
    m.ready.insert(e.ready.begin(), e.ready.end());
    m.buffered = e.buffered != 0;
    m.batches = e.batches;
    const std::uint64_t mid = e.spec.mid;
    migrations_.emplace(mid, std::move(m));
  }
  // A promoted spare / rejoined replica completes the handshake itself: it
  // announces a complete inherited buffer (the donor's ready set may not
  // cover us yet), and pulls at the next tick otherwise.
  for (auto& [mid, m] : migrations_) {
    if (group_ == m.spec.to && m.buffered && m.ready.count(self_.value) == 0) {
      broadcast_ready(ctx, m);
    }
  }
}

}  // namespace shadow::core
