// Chain replication on the total order broadcast service (extension).
//
// Sec. III of the paper lists chain replication [23] among the protocols the
// formally-modeled broadcast service enables, alongside primary-backup and
// state machine replication; this module implements it, reusing the same
// recovery pattern as PBR (suspicion → TOB-agreed reconfiguration →
// election by longest log → catch-up/snapshot → resume).
//
// Normal case (van Renesse & Schneider):
//   * update transactions enter at the HEAD, execute, and flow down the
//     chain over FIFO links; every replica executes in the same order; the
//     TAIL answers the client — so an answered update is in *every* replica
//     (stronger than PBR's ack-collection, with no ack traffic at all);
//   * read-only transactions are answered by the TAIL alone, which is safe
//     precisely because the tail only knows updates the whole chain has.
//
// A replica that receives a transaction out of place redirects the client
// (writes → head, reads → tail).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/replica_common.hpp"
#include "repl/state_transfer.hpp"
#include "tob/tob.hpp"

namespace shadow::core {

inline constexpr const char* kChainReconfigProc = "::chain-reconfig";
inline constexpr const char* kChainElectHeader = "chain-elect";
inline constexpr const char* kChainCatchupHeader = "chain-catchup";
inline constexpr const char* kChainSnapBeginHeader = "chain-snap-begin";
inline constexpr const char* kChainSnapBatchHeader = "chain-snap-batch";
inline constexpr const char* kChainSnapDoneHeader = "chain-snap-done";
inline constexpr const char* kChainRecoveredHeader = "chain-recovered";
inline constexpr const char* kChainHbHeader = "chain-hb";
inline constexpr const char* kChainDeliverHeader = "chain-deliver";
// Redirects reuse the PBR redirect message (DbClient already follows it);
// `primary` carries the head for writes or the tail for reads.

struct ChainConfig {
  net::Time hb_period = 1000000;
  net::Time suspect_timeout = 10000000;
  std::size_t txn_cache_max = 20000;
  std::size_t snapshot_batch_bytes = 50 * 1024;
  bool enable_failure_detection = true;
  /// Procedures the tail may answer alone (read-only).
  std::set<std::string> read_only_procs;
  obs::Tracer* tracer = nullptr;  // optional structured trace recorder
};

class ChainReplica {
 public:
  ChainReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
               std::shared_ptr<db::Engine> engine,
               std::shared_ptr<const workload::ProcedureRegistry> registry,
               std::vector<NodeId> chain,  // head first, tail last
               std::vector<NodeId> spares, ChainConfig config = {},
               ServerCosts costs = {});

  NodeId node() const { return self_; }
  bool is_head() const { return state_ == State::kNormal && !chain_.empty() && chain_.front() == self_; }
  bool is_tail() const { return state_ == State::kNormal && !chain_.empty() && chain_.back() == self_; }
  ConfigSeq config_seq() const { return config_seq_; }
  const std::vector<NodeId>& chain() const { return chain_; }
  std::uint64_t executed_order() const { return executed_order_; }
  std::uint64_t state_digest() const { return executor_.engine().state_digest(); }
  std::uint64_t executed() const { return executor_.executed_count(); }
  db::Engine& engine() { return executor_.engine(); }

  void make_spare() { state_ = State::kSpare; }

 private:
  enum class State : std::uint8_t { kNormal, kElecting, kRecovering, kSpare, kDeposed };

  // Message bodies are the shared replication shapes (one codec each);
  // chain uses them under its own "chain-*" headers.
  using ForwardBody = ReplForwardBody;
  using ElectBody = ReplElectBody;
  using CatchupBody = ReplCatchupBody;
  using SnapBeginBody = ReplSnapBeginBody;
  using SnapBatchBody = ReplSnapBatchBody;
  using SnapDoneBody = ReplSnapDoneBody;

  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_deliver(net::NodeContext& ctx, const tob::Command& cmd);
  void on_client_request(net::NodeContext& ctx, const workload::TxnRequest& req);
  void on_forward(net::NodeContext& ctx, const ForwardBody& fwd);
  void on_elect(net::NodeContext& ctx, NodeId from, const ElectBody& elect);
  void maybe_finish_election(net::NodeContext& ctx);
  void send_state_to(net::NodeContext& ctx, NodeId member, std::uint64_t member_seq);
  void on_heartbeat_tick(net::NodeContext& ctx);
  void suspect_and_propose(net::NodeContext& ctx, const std::vector<NodeId>& suspects);
  void execute_and_cache(net::NodeContext& ctx, std::uint64_t order,
                         const workload::TxnRequest& req, bool answer_client);
  void forward_down(net::NodeContext& ctx, std::uint64_t order, const workload::TxnRequest& req);
  void apply_buffered(net::NodeContext& ctx);
  std::optional<NodeId> successor() const;

  net::Transport& world_;
  NodeId self_;
  tob::TobNode& tob_;
  TxnExecutor executor_;
  ChainConfig config_;

  State state_ = State::kNormal;
  ConfigSeq config_seq_ = 0;
  std::vector<NodeId> chain_;
  std::vector<NodeId> spares_;
  std::size_t chain_size_target_ = 0;
  std::uint64_t executed_order_ = 0;
  std::uint64_t next_order_ = 0;  // head only

  std::deque<std::pair<std::uint64_t, workload::TxnRequest>> txn_cache_;
  std::map<ConfigSeq, std::map<std::uint32_t, std::uint64_t>> pending_elects_;
  std::deque<ForwardBody> buffered_forwards_;
  repl::StateTransfer::Receiver snap_rx_;
  std::set<std::uint32_t> recovered_;
  bool accepting_ = true;

  std::map<std::uint32_t, net::Time> last_heard_;
  std::set<std::uint64_t> proposed_;
  ClientId reconfig_client_id_;
  RequestSeq reconfig_seq_ = 0;
};

}  // namespace shadow::core
