#include "core/twopc.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "tob/tob.hpp"
#include "workload/bank.hpp"

namespace shadow::core {

namespace {

constexpr net::Time kXsTickPeriod = 500000;  // retransmission sweep, 500 ms
constexpr std::uint32_t kXsMaxDecideResends = 2;

// The local share of bank.transfer (the one built-in cross-shard procedure):
// the group owning `from` checks the balance and stages the debit; the group
// owning `to` stages the credit unconditionally — exactly the statements the
// single-shard procedure (workload/bank.cpp) would run, split by key owner.
// The local share of bank.balance2 (the cross-shard read-only pair): point
// reads of the local keys, nothing staged. Exists as a 2PC plan so the
// read-only fast path has an apples-to-apples locked baseline to beat — the
// prepare still takes exclusive row locks and costs the full ordered-entry
// budget, which is exactly what the snapshot-read path removes.
XsLocalPlan bank_balance2_plan(db::Engine& engine, const workload::TxnRequest& req,
                               const std::vector<std::int64_t>& local_keys) {
  (void)req;
  XsLocalPlan plan;
  for (const std::int64_t key : local_keys) {
    const db::TxnId txn = engine.begin();
    const db::ExecResult r =
        engine.execute(txn, db::make_select(workload::bank::kTable, {db::Value(key)}));
    plan.cost_us += r.cost_us + engine.commit(txn).cost_us;
    if (!r.ok() || r.rows.empty()) {
      plan.vote_yes = false;
      plan.error = "no such account";
      return plan;
    }
  }
  return plan;
}

XsLocalPlan bank_transfer_plan(db::Engine& engine, const workload::TxnRequest& req,
                               const std::vector<std::int64_t>& local_keys) {
  XsLocalPlan plan;
  const std::int64_t from = req.params[0].as_int();
  const std::int64_t amount = req.params[2].as_int();
  for (const std::int64_t key : local_keys) {
    if (key == from) {
      const db::TxnId txn = engine.begin();
      const db::ExecResult r =
          engine.execute(txn, db::make_select(workload::bank::kTable, {db::Value(key)}));
      plan.cost_us += r.cost_us + engine.commit(txn).cost_us;
      if (!r.ok() || r.rows.empty()) {
        plan.vote_yes = false;
        plan.error = "no such account";
      } else if (r.rows[0][2].as_int() < amount) {
        plan.vote_yes = false;
        plan.error = "overdraft";
      }
      if (!plan.vote_yes) {
        plan.staged.clear();
        return plan;
      }
      plan.staged.push_back(db::make_update(workload::bank::kTable, {db::Value(key)},
                                            {db::SetClause{2, db::SetOp::kAdd,
                                                           db::Value(-amount)}}));
    } else {
      plan.staged.push_back(db::make_update(workload::bank::kTable, {db::Value(key)},
                                            {db::SetClause{2, db::SetOp::kAdd,
                                                           db::Value(amount)}}));
    }
  }
  return plan;
}

}  // namespace

XsPlanFn xs_plan_for(const std::string& proc) {
  if (proc == workload::bank::kTransferProc) return &bank_transfer_plan;
  if (proc == workload::bank::kBalance2Proc) return &bank_balance2_plan;
  return nullptr;
}

XsCoordinator::XsCoordinator(net::Transport& world, NodeId self, GroupId group,
                             const RoutingView& view, TxnExecutor& executor,
                             ExecuteFn execute, obs::Tracer* tracer)
    : world_(world),
      self_(self),
      group_(group),
      view_(view),
      executor_(executor),
      execute_(std::move(execute)),
      tracer_(tracer) {
  world_.schedule_timer_for_node(self_, world_.now() + kXsTickPeriod,
                                 [this](net::NodeContext& ctx) { on_tick(ctx); });
}

bool XsCoordinator::on_deliver(net::NodeContext& ctx, std::uint64_t index,
                               const workload::TxnRequest& req) {
  if (req.proc == kXsPrepareProc) {
    handle_prepare(ctx, index, req);
    return true;
  }
  if (req.proc == kXsVoteProc) {
    handle_vote(ctx, req);
    return true;
  }
  if (req.proc == kXsDecideProc) {
    handle_decide(ctx, req);
    return true;
  }
  if (std::vector<GroupId> parts = view_.shards_of(req); parts.size() > 1) {
    // Misrouted begin (a migration moved every key we used to coordinate for
    // off this group): decline it so the replica's migration layer forwards
    // it to the owning coordinator instead of us driving 2PC as an outsider.
    if (std::find(parts.begin(), parts.end(), group_) == parts.end()) return false;
    handle_begin(ctx, index, req);
    return true;
  }
  if (locked_keys_.empty() && parked_.empty()) return false;
  const ShardRouter::ProcInfo* info = view_.proc_info(req.proc);
  std::vector<std::int64_t> keys = view_.keys_of(req);
  const bool keyless = keys.empty();
  const std::string table = info != nullptr ? info->table : std::string();
  if (!conflicts(keys, keyless, table)) return false;
  // Parked: executes in delivery order once the blocking locks release.
  if (keyless) {
    ++parked_keyless_;
  } else {
    for (const std::int64_t k : keys) ++parked_keys_[PartKey{table, k}];
  }
  parked_.push_back(ParkedTxn{index, req, std::move(keys), keyless});
  if (tracer_ != nullptr) tracer_->count("xs.parked");
  return true;
}

bool XsCoordinator::conflicts(const std::vector<std::int64_t>& keys, bool keyless,
                              const std::string& table) const {
  if (keyless) return !locked_keys_.empty() || !parked_.empty();
  if (parked_keyless_ > 0) return true;
  for (const std::int64_t k : keys) {
    if (locked_keys_.count(PartKey{table, k}) != 0 ||
        parked_keys_.count(PartKey{table, k}) != 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> XsCoordinator::prepared_txns() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> keys;
  keys.reserve(prepared_.size());
  for (const auto& [key, pr] : prepared_) keys.push_back(key);
  return keys;
}

bool XsCoordinator::range_clear(const std::string& table, std::int64_t lo,
                                std::int64_t hi) const {
  const auto touches = [&](const std::map<PartKey, int>& keys) {
    const auto it = keys.lower_bound(PartKey{table, lo});
    return it != keys.end() && it->first.first == table && it->first.second < hi;
  };
  return parked_keyless_ == 0 && !touches(locked_keys_) && !touches(parked_keys_);
}

void XsCoordinator::handle_begin(net::NodeContext& ctx, std::uint64_t index,
                                 const workload::TxnRequest& orig) {
  SHADOW_REQUIRE_MSG((orig.client.value & ~kXsClientMask) == 0,
                     "sharded mode requires client ids < 2^20");
  // A retried request whose response was lost after completion: answer from
  // the dedup table (the coordinator entry is gone by then).
  const auto& dedup = executor_.dedup_table();
  if (const auto it = dedup.find(orig.client.value);
      it != dedup.end() && orig.seq <= it->second.first) {
    ctx.send(orig.reply_to, workload::make_response_msg(it->second.second));
    return;
  }
  const TxnKey key{orig.client.value, orig.seq};
  if (coord_.count(key) != 0) return;
  Coord co;
  co.orig = orig;
  co.participants = view_.shards_of(orig);
  co.epoch = view_.epoch();
  const auto [it, inserted] = coord_.emplace(key, std::move(co));
  SHADOW_CHECK(inserted);
  // Co-located participant: this group is always one of the participants
  // (the coordinator IS the first participant group), and the begin is
  // already a totally-ordered point in its log — so run the local prepare
  // right here and record our vote directly instead of round-tripping an
  // ::xs-prepare and an ::xs-vote through our own log.
  prepare_local(ctx, index, group_, orig);
  const auto pit = prepared_.find(key);
  SHADOW_CHECK(pit != prepared_.end());
  it->second.votes.emplace(group_, pit->second.vote_yes);
  if (!pit->second.vote_yes && it->second.abort_error.empty()) {
    it->second.abort_error = pit->second.error;
  }
  for (const GroupId g : it->second.participants) {
    if (g != group_) send_prepare(ctx, g, it->second, orig.seq, orig.client.value);
  }
  maybe_decide(ctx, it->first, it->second);
}

void XsCoordinator::handle_prepare(net::NodeContext& ctx, std::uint64_t index,
                                   const workload::TxnRequest& req) {
  SHADOW_CHECK(req.params.size() >= 2);
  const auto coordinator = static_cast<GroupId>(req.params[0].as_int());
  const workload::TxnRequest orig = workload::decode_request(req.params[1].as_string());
  const std::uint64_t epoch =
      req.params.size() >= 3 ? static_cast<std::uint64_t>(req.params[2].as_int()) : 0;
  const TxnKey key{orig.client.value, orig.seq};
  // Already completed here (a post-rejoin retransmit), or already prepared.
  const auto& dedup = executor_.dedup_table();
  if (const auto dit = dedup.find(orig.client.value);
      dit != dedup.end() && orig.seq <= dit->second.first) {
    return;
  }
  if (prepared_.count(key) != 0) return;
  // A coordinator whose routing epoch differs planned against a different
  // partition picture — the key shares it computed may not match ours, so
  // refuse the plan rather than stage against stale ownership. The client
  // retries and the rerouted begin recomputes everything at current epochs.
  prepare_local(ctx, index, coordinator, orig,
                epoch != view_.epoch() ? "xs-epoch-retry" : nullptr);
  const Prepared& pr = prepared_.at(key);
  workload::TxnRequest vote;
  vote.client = ClientId{kXsVoteBit | (static_cast<std::uint32_t>(group_) << kXsVoteGroupShift) |
                         (orig.client.value & kXsClientMask)};
  vote.seq = orig.seq;
  vote.reply_to = self_;
  vote.proc = kXsVoteProc;
  vote.params = {db::Value(static_cast<std::int64_t>(group_)),
                 db::Value(static_cast<std::int64_t>(pr.vote_yes ? 1 : 0)),
                 db::Value(static_cast<std::int64_t>(orig.client.value)),
                 db::Value(pr.error)};
  broadcast_into(ctx, coordinator, vote.client, vote.seq, vote);
}

void XsCoordinator::prepare_local(net::NodeContext& ctx, std::uint64_t index,
                                  GroupId coordinator, const workload::TxnRequest& orig,
                                  const char* veto) {
  const TxnKey key{orig.client.value, orig.seq};
  if (prepared_.count(key) != 0) return;
  Prepared pr;
  pr.orig = orig;
  pr.prepare_index = index;
  pr.coordinator = coordinator;
  const ShardRouter::ProcInfo* info = view_.proc_info(orig.proc);
  const std::string table = info != nullptr ? info->table : std::string();
  for (const std::int64_t k : view_.keys_of(orig)) {
    if (view_.shard_of(table, k) == group_) pr.local_keys.push_back(k);
  }
  if (veto != nullptr) {
    pr.vote_yes = false;
    pr.error = veto;
  } else if (range_block_ && range_block_(table, pr.local_keys)) {
    pr.vote_yes = false;
    pr.error = "range-frozen";
  } else if (const XsPlanFn plan = xs_plan_for(orig.proc); plan == nullptr) {
    pr.vote_yes = false;
    pr.error = "no cross-shard plan for " + orig.proc;
  } else {
    XsLocalPlan lp = plan(executor_.engine(), orig, pr.local_keys);
    ctx.charge(lp.cost_us);
    pr.vote_yes = lp.vote_yes;
    pr.error = std::move(lp.error);
    pr.staged = std::move(lp.staged);
  }
  if (pr.vote_yes) {
    // Vote NO on any conflict instead of waiting: no waits-for edges across
    // groups means no distributed deadlock. Parked keys count as conflicts —
    // an earlier-delivered parked transaction must apply before our staged
    // writes touch its keys.
    bool granted = !conflicts(pr.local_keys, false, table);
    if (granted) {
      const db::TxnId lt = lock_txn_of(key);
      for (const std::int64_t k : pr.local_keys) {
        if (locks_.acquire(lt, db::LockTarget{table, db::Key{db::Value(k)}},
                           db::LockMode::kExclusive,
                           ctx.now()) != db::AcquireStatus::kGranted) {
          granted = false;
          break;
        }
      }
      if (!granted) locks_.release_all(lt);
    }
    if (granted) {
      for (const std::int64_t k : pr.local_keys) ++locked_keys_[PartKey{table, k}];
    } else {
      pr.vote_yes = false;
      pr.error = "xs-lock-conflict";
      pr.staged.clear();
    }
  }
  if (tracer_ != nullptr) {
    tracer_->xs_phase(ctx.now(), self_, orig.client, orig.seq, obs::XsPhase::kPrepare, group_,
                      orig.proc);
  }
  prepared_.emplace(key, std::move(pr));
}

void XsCoordinator::handle_vote(net::NodeContext& ctx, const workload::TxnRequest& req) {
  SHADOW_CHECK(req.params.size() >= 3);
  const auto g = static_cast<GroupId>(req.params[0].as_int());
  const bool yes = req.params[1].as_int() != 0;
  const auto orig_client = static_cast<std::uint32_t>(req.params[2].as_int());
  const auto it = coord_.find(TxnKey{orig_client, req.seq});
  if (it == coord_.end()) return;  // stale vote for a completed transaction
  it->second.votes.emplace(g, yes);
  if (!yes && it->second.abort_error.empty() && req.params.size() >= 4) {
    it->second.abort_error = req.params[3].as_string();
  }
  maybe_decide(ctx, it->first, it->second);
}

void XsCoordinator::maybe_decide(net::NodeContext& ctx, const TxnKey& key, Coord& co) {
  if (co.decided || co.votes.size() < co.participants.size()) return;
  co.decided = true;
  co.commit = true;
  for (const auto& [g, yes] : co.votes) {
    if (!yes) co.commit = false;
  }
  for (const GroupId g : co.participants) {
    if (g != group_) send_decide(ctx, g, co, key.second, key.first);
  }
  // Co-located participant, decide side: the final vote's delivery position
  // IS this group's decide point — a deterministic function of the delivery
  // prefix, so every coordinator replica applies its staged share and
  // answers the client right here instead of routing an ::xs-decide through
  // its own log (one more ordered entry saved per transaction).
  apply_decision(ctx, key, co.commit);
  if (!co.responded) {
    co.responded = true;
    const std::string error =
        co.commit ? std::string()
                  : (co.abort_error.empty() ? std::string("xs-abort") : co.abort_error);
    workload::TxnResponse resp{co.orig.client, co.orig.seq, co.commit, {}, error};
    // Commit position for read-your-writes: the coordinator group's apply
    // position suffices as the client's session floor — a later snapshot
    // read that covers it detects (and re-snaps past) any participant group
    // whose cut would exclude this transaction.
    resp.commit_group = group_;
    resp.commit_pos = executor_.engine().state_version();
    ctx.send(co.orig.reply_to, workload::make_response_msg(resp));
  }
  drain_parked(ctx);
}

void XsCoordinator::apply_decision(net::NodeContext& ctx, const TxnKey& key, bool commit) {
  const auto it = prepared_.find(key);
  if (it == prepared_.end()) return;
  const Prepared pr = std::move(it->second);
  prepared_.erase(it);
  SHADOW_CHECK_MSG(!commit || pr.vote_yes, "a commit decision implies every yes vote");
  const TxnExecutor::Execution exec = executor_.apply_prepared(
      pr.orig, pr.staged, commit,
      commit ? std::string() : (pr.error.empty() ? std::string("xs-abort") : pr.error));
  ctx.charge(exec.cost_us);
  // Record the applied decision for the RO snapshot protocol. Participants
  // are recomputed from the current view — good enough for split detection,
  // which only needs the set to cover the transaction's groups.
  DecideRecord rec;
  rec.client = pr.orig.client.value;
  rec.seq = pr.orig.seq;
  rec.decide_pos = executor_.engine().state_version();
  rec.committed = commit;
  rec.participants = view_.shards_of(pr.orig);
  decides_.push_back(std::move(rec));
  if (decides_.size() > kDecideRingCap) decides_.pop_front();
  std::uint64_t& high = last_decided_[pr.orig.client.value];
  high = std::max(high, pr.orig.seq);
  if (tracer_ != nullptr) {
    tracer_->xs_phase(ctx.now(), self_, pr.orig.client, pr.orig.seq,
                      commit ? obs::XsPhase::kCommit : obs::XsPhase::kAbort, group_,
                      pr.orig.proc, executor_.engine().state_version());
    tracer_->txn_execute(ctx.now(), self_, pr.orig.client, pr.orig.seq, pr.prepare_index,
                         false, commit, pr.orig.proc);
  }
  if (pr.vote_yes) {
    locks_.release_all(lock_txn_of(key));
    const std::string& table = view_.proc_info(pr.orig.proc)->table;
    for (const std::int64_t k : pr.local_keys) {
      const auto lit = locked_keys_.find(PartKey{table, k});
      if (lit != locked_keys_.end() && --lit->second == 0) locked_keys_.erase(lit);
    }
  }
}

void XsCoordinator::handle_decide(net::NodeContext& ctx, const workload::TxnRequest& req) {
  SHADOW_CHECK(req.params.size() >= 2);
  const bool commit = req.params[0].as_int() != 0;
  const auto orig_client = static_cast<std::uint32_t>(req.params[1].as_int());
  apply_decision(ctx, TxnKey{orig_client, req.seq}, commit);
  drain_parked(ctx);
}

void XsCoordinator::drain_parked(net::NodeContext& ctx) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::map<PartKey, int> earlier;
    bool earlier_keyless = false;
    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
      const ShardRouter::ProcInfo* info = view_.proc_info(it->req.proc);
      const std::string table =
          it->keyless || info == nullptr ? std::string() : info->table;
      bool runnable;
      if (it->keyless) {
        runnable = locked_keys_.empty() && earlier.empty() && !earlier_keyless;
      } else if (earlier_keyless) {
        runnable = false;
      } else {
        runnable = true;
        for (const std::int64_t k : it->keys) {
          if (locked_keys_.count(PartKey{table, k}) != 0 ||
              earlier.count(PartKey{table, k}) != 0) {
            runnable = false;
            break;
          }
        }
      }
      if (runnable) {
        ParkedTxn t = std::move(*it);
        parked_.erase(it);
        if (t.keyless) {
          --parked_keyless_;
        } else {
          for (const std::int64_t k : t.keys) {
            const auto pit = parked_keys_.find(PartKey{table, k});
            if (pit != parked_keys_.end() && --pit->second == 0) parked_keys_.erase(pit);
          }
        }
        execute_(ctx, t.index, t.req);
        progress = true;
        break;  // restart the scan: the execution may have changed nothing,
                // but iterator + `earlier` bookkeeping are stale now
      }
      if (it->keyless) {
        earlier_keyless = true;
      } else {
        for (const std::int64_t k : it->keys) ++earlier[PartKey{table, k}];
      }
    }
  }
}

void XsCoordinator::send_prepare(net::NodeContext& ctx, GroupId g, const Coord& co,
                                 RequestSeq seq, std::uint32_t orig_client) {
  workload::TxnRequest prep;
  prep.client = ClientId{kXsPrepareBit | (orig_client & kXsClientMask)};
  prep.seq = seq;
  prep.reply_to = self_;
  prep.proc = kXsPrepareProc;
  prep.params = {db::Value(static_cast<std::int64_t>(group_)),
                 db::Value(workload::encode_request(co.orig)),
                 db::Value(static_cast<std::int64_t>(co.epoch))};
  broadcast_into(ctx, g, prep.client, seq, prep);
}

void XsCoordinator::send_decide(net::NodeContext& ctx, GroupId g, const Coord& co,
                                RequestSeq seq, std::uint32_t orig_client) {
  workload::TxnRequest dec;
  dec.client = ClientId{kXsDecideBit | (orig_client & kXsClientMask)};
  dec.seq = seq;
  dec.reply_to = self_;
  dec.proc = kXsDecideProc;
  dec.params = {db::Value(static_cast<std::int64_t>(co.commit ? 1 : 0)),
                db::Value(static_cast<std::int64_t>(orig_client))};
  broadcast_into(ctx, g, dec.client, seq, dec);
}

void XsCoordinator::broadcast_into(net::NodeContext& ctx, GroupId g, ClientId client,
                                   RequestSeq seq, const workload::TxnRequest& req) {
  const std::vector<NodeId>& tobs = view_.tob_targets(g);
  SHADOW_CHECK(!tobs.empty());
  // Spread the R-way replica fan-in over the group's TOB frontends; the
  // target TOB deduplicates the R identical commands at delivery.
  const NodeId target = tobs[self_.value % tobs.size()];
  tob::BroadcastBody body{tob::Command{client, seq, workload::encode_request(req)}};
  ctx.send(target, net::make_msg(tob::kBroadcastHeader, std::move(body)));
}

void XsCoordinator::on_tick(net::NodeContext& ctx) {
  for (auto it = coord_.begin(); it != coord_.end();) {
    Coord& co = it->second;
    if (!co.decided) {
      // Re-prepare the groups whose vote is still missing (the prepare or the
      // vote was lost; TOB dedup makes retransmission idempotent).
      for (const GroupId g : co.participants) {
        if (co.votes.count(g) == 0) send_prepare(ctx, g, co, it->first.second, it->first.first);
      }
      ++it;
    } else if (co.responded && co.decide_resends >= kXsMaxDecideResends) {
      it = coord_.erase(it);
    } else {
      ++co.decide_resends;
      for (const GroupId g : co.participants) {
        if (g != group_) send_decide(ctx, g, co, it->first.second, it->first.first);
      }
      ++it;
    }
  }
  ctx.set_timer(kXsTickPeriod, [this](net::NodeContext& c) { on_tick(c); });
}

XsSnapBody XsCoordinator::snapshot() const {
  XsSnapBody body;
  for (const auto& [key, pr] : prepared_) {
    body.prepared.push_back(XsSnapBody::PrepEntry{
        workload::encode_request(pr.orig), pr.prepare_index, pr.coordinator,
        static_cast<std::uint8_t>(pr.vote_yes ? 1 : 0), pr.error});
  }
  for (const ParkedTxn& t : parked_) {
    body.parked.push_back(XsSnapBody::ParkEntry{t.index, workload::encode_request(t.req)});
  }
  for (const auto& [key, co] : coord_) {
    XsSnapBody::CoordEntry e;
    e.orig = workload::encode_request(co.orig);
    e.participants.assign(co.participants.begin(), co.participants.end());
    for (const auto& [g, yes] : co.votes) {
      e.votes.emplace_back(g, static_cast<std::uint8_t>(yes ? 1 : 0));
    }
    e.abort_error = co.abort_error;
    e.decided = co.decided ? 1 : 0;
    e.commit = co.commit ? 1 : 0;
    e.responded = co.responded ? 1 : 0;
    e.decide_resends = co.decide_resends;
    e.epoch = co.epoch;
    body.coords.push_back(std::move(e));
  }
  body.last_decided.assign(last_decided_.begin(), last_decided_.end());
  return body;
}

void XsCoordinator::restore(const XsSnapBody& snap) {
  prepared_.clear();
  coord_.clear();
  parked_.clear();
  locked_keys_.clear();
  parked_keys_.clear();
  parked_keyless_ = 0;
  locks_ = db::LockManager{};
  for (const auto& e : snap.prepared) {
    Prepared pr;
    pr.orig = workload::decode_request(e.orig);
    pr.prepare_index = e.prepare_index;
    pr.coordinator = e.coordinator;
    pr.vote_yes = e.vote_yes != 0;
    pr.error = e.error;
    {
      const ShardRouter::ProcInfo* info = view_.proc_info(pr.orig.proc);
      const std::string table = info != nullptr ? info->table : std::string();
      for (const std::int64_t k : view_.keys_of(pr.orig)) {
        if (view_.shard_of(table, k) == group_) pr.local_keys.push_back(k);
      }
    }
    const TxnKey key{pr.orig.client.value, pr.orig.seq};
    if (pr.vote_yes) {
      // The exclusive locks froze the plan's read set between prepare and
      // snapshot, so re-running it reproduces the donor's staged writes.
      const XsPlanFn plan = xs_plan_for(pr.orig.proc);
      SHADOW_CHECK(plan != nullptr);
      XsLocalPlan lp = plan(executor_.engine(), pr.orig, pr.local_keys);
      SHADOW_CHECK_MSG(lp.vote_yes, "restored plan must reproduce the yes vote");
      pr.staged = std::move(lp.staged);
      const db::TxnId lt = lock_txn_of(key);
      const std::string& table = view_.proc_info(pr.orig.proc)->table;
      for (const std::int64_t k : pr.local_keys) {
        SHADOW_CHECK(locks_.acquire(lt, db::LockTarget{table, db::Key{db::Value(k)}},
                                    db::LockMode::kExclusive,
                                    0) == db::AcquireStatus::kGranted);
        ++locked_keys_[PartKey{table, k}];
      }
    }
    prepared_.emplace(key, std::move(pr));
  }
  for (const auto& e : snap.parked) {
    ParkedTxn t;
    t.index = e.index;
    t.req = workload::decode_request(e.orig);
    t.keys = view_.keys_of(t.req);
    t.keyless = t.keys.empty();
    if (t.keyless) {
      ++parked_keyless_;
    } else {
      const std::string& table = view_.proc_info(t.req.proc)->table;
      for (const std::int64_t k : t.keys) ++parked_keys_[PartKey{table, k}];
    }
    parked_.push_back(std::move(t));
  }
  for (const auto& e : snap.coords) {
    Coord co;
    co.orig = workload::decode_request(e.orig);
    co.participants.assign(e.participants.begin(), e.participants.end());
    for (const auto& [g, yes] : e.votes) co.votes[g] = yes != 0;
    co.abort_error = e.abort_error;
    co.decided = e.decided != 0;
    co.commit = e.commit != 0;
    co.responded = e.responded != 0;
    co.decide_resends = e.decide_resends;
    co.epoch = e.epoch;
    coord_.emplace(TxnKey{co.orig.client.value, co.orig.seq}, std::move(co));
  }
  last_decided_.clear();
  for (const auto& [c, s] : snap.last_decided) last_decided_[c] = s;
}

}  // namespace shadow::core
