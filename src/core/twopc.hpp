// Cross-shard transactions: TOB-ordered two-phase commit.
//
// A cross-shard transaction is broadcast into its *coordinator* group's log
// (the first participant group, see ShardRouter::coordinator_of). Every
// replica of that group delivers it at the same log position and — because
// coordinator state is thereby replicated — each one deterministically
// drives the same protocol:
//
//   begin    the coordinator group delivers the original request, records a
//            coordinator entry, runs its OWN local prepare inline (the begin
//            is already a totally-ordered point in this group's log, so the
//            co-located participant's vote needs no extra round trip) and
//            broadcasts a `::xs-prepare` control command into every OTHER
//            participant group's TOB log — two ordered entries saved per
//            transaction in the coordinator group;
//   prepare  each participant delivers the prepare in its own log, runs the
//            procedure's local plan (reads + staged writes for the keys this
//            group owns), takes exclusive row locks through db::LockManager
//            — any lock conflict votes NO immediately, which is what makes
//            distributed deadlock impossible — and broadcasts a `::xs-vote`
//            back into the coordinator group's log;
//   decide   once the coordinator group has delivered every group's vote in
//            its own log, the all-yes verdict is broadcast as `::xs-decide`
//            into every OTHER participant log; remote participants apply
//            their staged writes (or drop them) and release the locks at
//            the decide's delivery, while the coordinator group applies its
//            own share — and answers the client — directly at the final
//            vote's delivery position (that position is itself a
//            deterministic decide point, so no `::xs-decide` round-trips
//            through the coordinator's own log).
//
// A 2-group transaction therefore costs four ordered entries: begin + the
// remote vote in the coordinator log, prepare + decide in the other log.
//
// Prepare/vote/decide travel as ordinary TOB commands under synthetic client
// ids (all above core::kControlClientBit, so the pipelined delivery path
// spots them without decoding) and are deduplicated by the normal TOB
// (client, seq) key — retransmissions are free to be aggressive.
//
// Between prepare and decide the group keeps executing: single-shard
// transactions that touch a locked key (or a key behind one in the parked
// queue) are *parked* and drained in delivery order when locks release —
// a deterministic function of the delivery prefix, so every replica parks
// and resumes identically. Everything here runs on the consensus thread;
// the executor pipeline is flushed before any of it touches the engine.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/replica_common.hpp"
#include "core/router.hpp"
#include "db/lock_manager.hpp"
#include "net/transport.hpp"

namespace shadow::core {

inline constexpr const char* kXsPrepareProc = "::xs-prepare";
inline constexpr const char* kXsVoteProc = "::xs-vote";
inline constexpr const char* kXsDecideProc = "::xs-decide";
/// Snapshot stream piece carrying in-flight 2PC state (sent between the row
/// batches and the done message, only by sharded deployments).
inline constexpr const char* kXsSnapHeader = "smr-snap-xs";

/// Synthetic client-id spaces for the 2PC control commands (all above
/// kControlClientBit = 0x40000000 so the pipelined path flushes for them).
/// The low 20 bits carry the originating client id — sharded deployments
/// therefore require real client ids < 2^20. Votes additionally encode the
/// voting group so R-way fan-in from different groups never collides.
inline constexpr std::uint32_t kXsBeginBit = 0x60000000u;    // client → coordinator TOB
inline constexpr std::uint32_t kXsPrepareBit = 0x68000000u;  // coordinator → participant TOBs
inline constexpr std::uint32_t kXsVoteBit = 0x70000000u;     // participant → coordinator TOB
inline constexpr std::uint32_t kXsDecideBit = 0x78000000u;   // coordinator → participant TOBs
inline constexpr std::uint32_t kXsClientMask = 0x000FFFFFu;
inline constexpr std::uint32_t kXsVoteGroupShift = 20;

/// A participant's local share of a cross-shard transaction: the vote (reads
/// evaluated against the group's own keys), the writes staged for apply at
/// commit, and the plan's virtual CPU cost. Recomputable: the exclusive row
/// locks freeze every key the plan read, so re-running the plan against a
/// later snapshot of the same group yields the identical result (which is
/// how rejoin snapshots avoid shipping statements).
struct XsLocalPlan {
  bool vote_yes = true;
  std::string error;
  std::vector<db::Statement> staged;
  std::uint64_t cost_us = 0;
};

/// The local planner for a cross-shard procedure: given the engine and the
/// partition keys this group owns, produce vote + staged writes. Null for
/// procedures that can never cross shards.
using XsPlanFn = XsLocalPlan (*)(db::Engine& engine, const workload::TxnRequest& req,
                                 const std::vector<std::int64_t>& local_keys);
XsPlanFn xs_plan_for(const std::string& proc);

/// In-flight 2PC state shipped with rejoin/promotion snapshots. Prepared
/// entries carry only the original request + vote — staged writes and locks
/// are recomputed at restore (see XsLocalPlan).
struct XsSnapBody {
  struct PrepEntry {
    std::string orig;  // encoded original TxnRequest
    std::uint64_t prepare_index = 0;
    std::uint32_t coordinator = 0;
    std::uint8_t vote_yes = 0;
    std::string error;
  };
  struct ParkEntry {
    std::uint64_t index = 0;
    std::string orig;
  };
  struct CoordEntry {
    std::string orig;
    std::vector<std::uint32_t> participants;
    std::vector<std::pair<std::uint32_t, std::uint8_t>> votes;
    std::string abort_error;
    std::uint8_t decided = 0;
    std::uint8_t commit = 0;
    std::uint8_t responded = 0;
    std::uint32_t decide_resends = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<PrepEntry> prepared;
  std::vector<ParkEntry> parked;
  std::vector<CoordEntry> coords;
  /// Per-client decided high-water marks: a rejoined replica must answer RO
  /// snap exchanges without claiming every old decide is still "future".
  std::vector<std::pair<std::uint32_t, std::uint64_t>> last_decided;
};

/// Per-replica 2PC engine, owned by an SmrReplica in a sharded deployment.
/// All methods run on the consensus thread with the executor pipeline
/// flushed; state transitions are driven purely by the group's delivery
/// order, so every replica of the group holds identical state.
class XsCoordinator {
 public:
  /// Re-enters the owning replica's normal execution path for a parked
  /// single-shard transaction (delivery index, request).
  using ExecuteFn =
      std::function<void(net::NodeContext&, std::uint64_t, const workload::TxnRequest&)>;

  XsCoordinator(net::Transport& world, NodeId self, GroupId group, const RoutingView& view,
                TxnExecutor& executor, ExecuteFn execute, obs::Tracer* tracer);

  /// Shard-rebalancing freeze hook (core/migrate.hpp): when set and true for
  /// a transaction's keys, prepare_local votes NO "range-frozen" instead of
  /// planning — the range is mid-migration and retryable once it lands.
  using RangeBlockFn =
      std::function<bool(const std::string& table, const std::vector<std::int64_t>& keys)>;
  void set_range_block(RangeBlockFn fn) { range_block_ = std::move(fn); }

  /// Delivery interception, called for every non-reconfig/rejoin delivery.
  /// Returns true if consumed (an xs control command, a cross-shard
  /// original, or a single-shard transaction that had to be parked); false
  /// means the caller executes it normally.
  bool on_deliver(net::NodeContext& ctx, std::uint64_t index, const workload::TxnRequest& req);

  /// True while any lock is held or any transaction is parked: decided
  /// batches must take the serial delivery path so parking stays a
  /// deterministic function of the delivery prefix.
  bool busy() const { return !locked_keys_.empty() || !parked_.empty(); }

  /// True when no prepared lock and no parked transaction touches `table`
  /// keys in [lo, hi) — the migration donor's drain condition: new prepares
  /// against a frozen range vote NO, so once clear the range stays clear.
  bool range_clear(const std::string& table, std::int64_t lo, std::int64_t hi) const;

  /// One applied 2PC decision, kept in a bounded recent-decide ring for the
  /// read-only snapshot protocol: an RO coordinator that sees this txn's
  /// writes included at one group (decide_pos <= the group's snap position)
  /// uses `participants` to check the other groups' cuts include it too.
  struct DecideRecord {
    std::uint32_t client = 0;
    std::uint64_t seq = 0;
    std::uint64_t decide_pos = 0;  // engine state version when the share applied
    bool committed = false;
    std::vector<GroupId> participants;
  };
  /// The ring, newest last. Bounded (kDecideRingCap); eviction is safe for
  /// the RO protocol because `last_decided` disambiguates: a decide missing
  /// from the ring was either applied before every ring entry (its client's
  /// high-water covers the seq) or has not arrived at this group at all.
  const std::deque<DecideRecord>& recent_decides() const { return decides_; }
  /// Per xs client, the highest seq whose decision this group has APPLIED.
  /// Client seqs are monotone (closed-loop), and a prepare always precedes
  /// its decide in the group's log, so `last_decided[c] >= s` proves txn
  /// (c, s) applied at or below the current engine position — even after
  /// its DecideRecord fell off the bounded ring.
  const std::map<std::uint32_t, std::uint64_t>& last_decided() const { return last_decided_; }
  /// (client, seq) of every prepared-but-undecided cross-shard transaction
  /// at this group — the RO snapshot response's in-doubt set.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> prepared_txns() const;

  XsSnapBody snapshot() const;
  void restore(const XsSnapBody& snap);

 private:
  using TxnKey = std::pair<std::uint32_t, std::uint64_t>;  // (client, seq)
  using PartKey = std::pair<std::string, std::int64_t>;    // (table, partition key)

  struct Prepared {
    workload::TxnRequest orig;
    std::uint64_t prepare_index = 0;
    GroupId coordinator = 0;
    bool vote_yes = false;
    std::string error;
    std::vector<db::Statement> staged;
    std::vector<std::int64_t> local_keys;
  };
  struct Coord {
    workload::TxnRequest orig;
    std::vector<GroupId> participants;
    std::map<GroupId, bool> votes;
    std::string abort_error;  // first NO vote's reason, relayed to the client
    bool decided = false;
    bool commit = false;
    bool responded = false;
    std::uint32_t decide_resends = 0;
    std::uint64_t epoch = 0;  // routing-view epoch the participant set was computed at
  };
  struct ParkedTxn {
    std::uint64_t index = 0;
    workload::TxnRequest req;
    std::vector<std::int64_t> keys;
    bool keyless = false;
  };

  void handle_begin(net::NodeContext& ctx, std::uint64_t index,
                    const workload::TxnRequest& orig);
  void handle_prepare(net::NodeContext& ctx, std::uint64_t index,
                      const workload::TxnRequest& req);
  /// Runs this group's local prepare (plan + no-wait locks) for `orig` at
  /// log position `index` and records it in `prepared_`. Idempotent. A
  /// non-null `veto` skips planning and records an immediate NO vote with
  /// that error (epoch mismatch, frozen range).
  void prepare_local(net::NodeContext& ctx, std::uint64_t index, GroupId coordinator,
                     const workload::TxnRequest& orig, const char* veto = nullptr);
  void handle_vote(net::NodeContext& ctx, const workload::TxnRequest& req);
  void handle_decide(net::NodeContext& ctx, const workload::TxnRequest& req);
  /// Applies (or drops) this group's staged share of the transaction and
  /// releases its locks. No-op if the transaction is not prepared here.
  void apply_decision(net::NodeContext& ctx, const TxnKey& key, bool commit);

  void send_prepare(net::NodeContext& ctx, GroupId g, const Coord& co, RequestSeq seq,
                    std::uint32_t orig_client);
  void send_decide(net::NodeContext& ctx, GroupId g, const Coord& co, RequestSeq seq,
                   std::uint32_t orig_client);
  void broadcast_into(net::NodeContext& ctx, GroupId g, ClientId client, RequestSeq seq,
                      const workload::TxnRequest& req);
  void maybe_decide(net::NodeContext& ctx, const TxnKey& key, Coord& co);
  void release_and_drain(net::NodeContext& ctx, const Prepared& pr, db::TxnId lock_txn);
  void drain_parked(net::NodeContext& ctx);
  bool conflicts(const std::vector<std::int64_t>& keys, bool keyless,
                 const std::string& table) const;
  void on_tick(net::NodeContext& ctx);

  static db::TxnId lock_txn_of(const TxnKey& key) {
    return (std::uint64_t{1} << 63) | (std::uint64_t{key.first & kXsClientMask} << 42) |
           (key.second & ((std::uint64_t{1} << 42) - 1));
  }

  net::Transport& world_;
  NodeId self_;
  GroupId group_;
  const RoutingView& view_;
  TxnExecutor& executor_;
  ExecuteFn execute_;
  obs::Tracer* tracer_;
  RangeBlockFn range_block_;
  db::LockManager locks_;

  static constexpr std::size_t kDecideRingCap = 64;

  std::map<TxnKey, Prepared> prepared_;
  std::map<TxnKey, Coord> coord_;
  std::deque<ParkedTxn> parked_;
  std::deque<DecideRecord> decides_;
  std::map<std::uint32_t, std::uint64_t> last_decided_;
  // Multisets backing the O(log n) conflict test: keys exclusively locked by
  // yes-voted prepares, and keys of parked transactions (plus a count of
  // parked key-less scans, which conflict with everything).
  std::map<PartKey, int> locked_keys_;
  std::map<PartKey, int> parked_keys_;
  std::size_t parked_keyless_ = 0;
};

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::XsSnapBody> {
  static void encode(BytesWriter& w, const core::XsSnapBody& v) {
    w.u32(static_cast<std::uint32_t>(v.prepared.size()));
    for (const auto& p : v.prepared) {
      w.str(p.orig);
      w.u64(p.prepare_index);
      w.u32(p.coordinator);
      w.u8(p.vote_yes);
      w.str(p.error);
    }
    w.u32(static_cast<std::uint32_t>(v.parked.size()));
    for (const auto& p : v.parked) {
      w.u64(p.index);
      w.str(p.orig);
    }
    w.u32(static_cast<std::uint32_t>(v.coords.size()));
    for (const auto& c : v.coords) {
      w.str(c.orig);
      Codec<std::vector<std::uint32_t>>::encode(w, c.participants);
      Codec<std::vector<std::pair<std::uint32_t, std::uint8_t>>>::encode(w, c.votes);
      w.str(c.abort_error);
      w.u8(c.decided);
      w.u8(c.commit);
      w.u8(c.responded);
      w.u32(c.decide_resends);
      w.u64(c.epoch);
    }
    Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::encode(w, v.last_decided);
  }
  static core::XsSnapBody decode(BytesReader& r) {
    core::XsSnapBody v;
    v.prepared.resize(r.u32());
    for (auto& p : v.prepared) {
      p.orig = r.str();
      p.prepare_index = r.u64();
      p.coordinator = r.u32();
      p.vote_yes = r.u8();
      p.error = r.str();
    }
    v.parked.resize(r.u32());
    for (auto& p : v.parked) {
      p.index = r.u64();
      p.orig = r.str();
    }
    v.coords.resize(r.u32());
    for (auto& c : v.coords) {
      c.orig = r.str();
      c.participants = Codec<std::vector<std::uint32_t>>::decode(r);
      c.votes = Codec<std::vector<std::pair<std::uint32_t, std::uint8_t>>>::decode(r);
      c.abort_error = r.str();
      c.decided = r.u8();
      c.commit = r.u8();
      c.responded = r.u8();
      c.decide_resends = r.u32();
      c.epoch = r.u64();
    }
    v.last_decided = Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
