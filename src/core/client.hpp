// The ShadowDB client library.
//
// Closed-loop client: submits one transaction at a time (type + parameters),
// waits for the answer, and retries on timeout — "In case of failures,
// clients may timeout and resend transactions to the replicas"; replicas
// deduplicate by (client, seq). Two submission modes:
//
//   kDirect — send the request to a server node (PBR primary, standalone or
//             baseline servers). Handles pbr-redirect responses (new primary
//             after a reconfiguration, or busy during recovery).
//   kTob    — broadcast the request through the total order broadcast
//             service (SMR); the client "waits to receive the first answer".
#pragma once

#include <functional>
#include <optional>

#include "common/stats.hpp"
#include "core/router.hpp"
#include "tob/tob.hpp"
#include "workload/messages.hpp"

namespace shadow::core {

class DbClient {
 public:
  enum class Mode : std::uint8_t { kDirect, kTob };

  struct Options {
    Mode mode = Mode::kDirect;
    std::vector<NodeId> targets;        // servers (direct) or TOB nodes (tob)
    net::Time retry_timeout = 2000000;  // 2 s resend timeout
    net::Time busy_backoff = 100000;    // retry delay on a busy redirect
    std::size_t txn_limit = 1000;       // closed-loop transaction count
    std::uint64_t client_cpu_us = 4;    // per send/receive on the client machine
    obs::Tracer* tracer = nullptr;      // optional structured trace recorder
    /// Sharded deployments (kTob mode): route each request to its
    /// coordinator group's TOB nodes instead of `targets`, and flag
    /// cross-shard requests on the wire (kXsBeginBit) so replicas classify
    /// them without decoding payloads. Null for classic clusters.
    const ShardRouter* router = nullptr;
    /// Resubmit (with a fresh sequence number) transactions aborted by the
    /// no-wait 2PC conflict rule ("xs-lock-conflict") — those aborts are
    /// transient serialization failures, not transaction outcomes. Semantic
    /// aborts (overdraft, missing account) are never retried.
    bool retry_conflict_aborts = false;
    /// Jittered exponential backoff before a conflict retry is resubmitted:
    /// the delay is uniform in [base, base * 2^min(streak, 6)] where streak
    /// counts consecutive conflicts of the same transaction. Without it,
    /// an immediate retry usually re-collides with the still-in-flight
    /// winner (its locks are held until its decide), and every spin burns
    /// three ordered log entries per participant group — under contention
    /// that feedback loop collapses throughput. 0 retries immediately.
    net::Time conflict_backoff_us = 400;
  };

  /// Supplies the next transaction (procedure name + parameters).
  using NextTxnFn = std::function<std::pair<std::string, workload::Params>()>;
  /// Optional per-commit hook (virtual completion time) for timelines.
  using CommitHook = std::function<void(net::Time)>;

  DbClient(net::Transport& world, NodeId self, ClientId id, Options options, NextTxnFn next_txn);

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Begins the closed loop (schedules the first submission).
  void start(net::Time initial_delay = 0);

  bool done() const { return done_; }
  const LatencyStats& latencies() const { return latencies_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t conflict_retries() const { return conflict_retries_; }
  ClientId id() const { return id_; }

 private:
  void submit_next(net::NodeContext& ctx);
  void send_current(net::NodeContext& ctx);
  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_timeout(net::NodeContext& ctx);
  void finish_current(net::NodeContext& ctx, const workload::TxnResponse& resp);

  net::Transport& world_;
  NodeId self_;
  ClientId id_;
  Options options_;
  NextTxnFn next_txn_;
  CommitHook commit_hook_;

  RequestSeq seq_ = 0;
  std::optional<workload::TxnRequest> in_flight_;
  net::Time sent_at_ = 0;
  std::size_t target_idx_ = 0;
  net::TimerId timeout_timer_ = 0;
  std::size_t consecutive_busy_ = 0;
  std::uint32_t conflict_streak_ = 0;
  std::uint64_t backoff_state_ = 0;  // per-client deterministic jitter LCG
  bool done_ = false;

  LatencyStats latencies_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t conflict_retries_ = 0;
  std::size_t submitted_ = 0;
};

}  // namespace shadow::core
