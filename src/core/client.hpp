// The ShadowDB client library.
//
// Closed-loop client: submits one transaction at a time (type + parameters),
// waits for the answer, and retries on timeout — "In case of failures,
// clients may timeout and resend transactions to the replicas"; replicas
// deduplicate by (client, seq). Two submission modes:
//
//   kDirect — send the request to a server node (PBR primary, standalone or
//             baseline servers). Handles pbr-redirect responses (new primary
//             after a reconfiguration, or busy during recovery).
//   kTob    — broadcast the request through the total order broadcast
//             service (SMR); the client "waits to receive the first answer".
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/stats.hpp"
#include "core/rosnap.hpp"
#include "core/router.hpp"
#include "tob/tob.hpp"
#include "workload/messages.hpp"

namespace shadow::core {

class DbClient {
 public:
  enum class Mode : std::uint8_t { kDirect, kTob };

  struct Options {
    Mode mode = Mode::kDirect;
    std::vector<NodeId> targets;        // servers (direct) or TOB nodes (tob)
    net::Time retry_timeout = 2000000;  // 2 s resend timeout
    net::Time busy_backoff = 100000;    // retry delay on a busy redirect
    std::size_t txn_limit = 1000;       // closed-loop transaction count
    std::uint64_t client_cpu_us = 4;    // per send/receive on the client machine
    obs::Tracer* tracer = nullptr;      // optional structured trace recorder
    /// Sharded deployments (kTob mode): route each request to its
    /// coordinator group's TOB nodes instead of `targets`, and flag
    /// cross-shard requests on the wire (kXsBeginBit) so replicas classify
    /// them without decoding payloads. Null for classic clusters.
    const ShardRouter* router = nullptr;
    /// Resubmit (with a fresh sequence number) transactions aborted by the
    /// no-wait 2PC conflict rule ("xs-lock-conflict") — those aborts are
    /// transient serialization failures, not transaction outcomes. Semantic
    /// aborts (overdraft, missing account) are never retried.
    bool retry_conflict_aborts = false;
    /// Jittered exponential backoff before a conflict retry is resubmitted:
    /// the delay is uniform in [base, base * 2^min(streak, 6)] where streak
    /// counts consecutive conflicts of the same transaction. Without it,
    /// an immediate retry usually re-collides with the still-in-flight
    /// winner (its locks are held until its decide), and every spin burns
    /// three ordered log entries per participant group — under contention
    /// that feedback loop collapses throughput. 0 retries immediately.
    net::Time conflict_backoff_us = 400;
  };

  /// Supplies the next transaction (procedure name + parameters).
  using NextTxnFn = std::function<std::pair<std::string, workload::Params>()>;
  /// Optional per-commit hook (virtual completion time) for timelines.
  using CommitHook = std::function<void(net::Time)>;
  /// Optional hook fired on every FINAL answer (after conflict-retry
  /// filtering), committed or aborted — tests use it to assert on rows.
  using ResponseHook = std::function<void(const workload::TxnResponse&)>;

  DbClient(net::Transport& world, NodeId self, ClientId id, Options options, NextTxnFn next_txn);

  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void set_response_hook(ResponseHook hook) { response_hook_ = std::move(hook); }

  /// Begins the closed loop (schedules the first submission).
  void start(net::Time initial_delay = 0);

  bool done() const { return done_; }
  const LatencyStats& latencies() const { return latencies_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t conflict_retries() const { return conflict_retries_; }
  /// Read-only transactions completed through the lock-free snapshot path
  /// (these never acquire 2PC locks, so they cannot produce
  /// "xs-lock-conflict" aborts).
  std::uint64_t ro_committed() const { return ro_committed_; }
  /// RO attempts restarted end-to-end (ro-stale/ro-moved/ro-split/timeouts).
  std::uint64_t ro_restarts() const { return ro_restarts_; }
  ClientId id() const { return id_; }

 private:
  void submit_next(net::NodeContext& ctx);
  void send_current(net::NodeContext& ctx);
  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_timeout(net::NodeContext& ctx);
  void finish_current(net::NodeContext& ctx, const workload::TxnResponse& resp);

  // -- read-only snapshot path (core/rosnap.hpp; the client coordinates) ------
  /// Eligible: sharded kTob deployment and a procedure registered read-only.
  bool ro_eligible(const workload::TxnRequest& req) const;
  void start_ro_attempt(net::NodeContext& ctx);
  void restart_ro_attempt(net::NodeContext& ctx);
  void send_ro_snap(net::NodeContext& ctx, GroupId g);
  void send_ro_read(net::NodeContext& ctx, GroupId g, std::uint64_t version,
                    std::uint64_t floor);
  void on_ro_snap_resp(net::NodeContext& ctx, const RoSnapRespBody& body);
  void on_ro_read_resp(net::NodeContext& ctx, const RoReadRespBody& body);
  /// All snaps in: torn-cut detection (re-snap lagging groups) or fan out
  /// the pinned reads.
  void resolve_ro_cut(net::NodeContext& ctx);
  void finish_ro(net::NodeContext& ctx);
  NodeId ro_replica_of(GroupId g) const;

  net::Transport& world_;
  NodeId self_;
  ClientId id_;
  Options options_;
  NextTxnFn next_txn_;
  CommitHook commit_hook_;
  ResponseHook response_hook_;

  RequestSeq seq_ = 0;
  std::optional<workload::TxnRequest> in_flight_;
  net::Time sent_at_ = 0;
  std::size_t target_idx_ = 0;
  net::TimerId timeout_timer_ = 0;
  std::size_t consecutive_busy_ = 0;
  std::uint32_t conflict_streak_ = 0;
  std::uint64_t backoff_state_ = 0;  // per-client deterministic jitter LCG
  bool done_ = false;

  /// One in-flight read-only attempt. Phase 0 collects one RoSnapResp per
  /// participant group (cross-shard only); phase 1 collects the versioned
  /// reads. Every replica answer is matched against the current in-flight
  /// seq, the awaiting set, and (cross-shard) the pinned cut version, so
  /// answers from an abandoned attempt cannot tear the cut.
  struct RoAttempt {
    std::vector<GroupId> participants;
    bool cross = false;
    int phase = 0;
    std::uint32_t rounds = 0;  // re-snap rounds this attempt
    std::set<GroupId> awaiting;
    std::map<GroupId, RoSnapRespBody> snaps;
    std::map<GroupId, std::uint64_t> cut;  // group → pinned version (0 = current)
    std::map<GroupId, std::vector<db::Row>> rows;
  };
  std::optional<RoAttempt> ro_;
  /// Session floors: per group, the apply position this client's own commits
  /// (and completed RO cuts) are visible at — read-your-writes + monotonic
  /// reads across the session.
  std::map<std::uint32_t, std::uint64_t> ro_floors_;
  /// Per-group replica rotation for snaps/reads. Independent per group on
  /// purpose: the groups' replica lists are machine-aligned, so a shared
  /// offset could never address, say, the sole surviving replica index in
  /// every group at once — the snap phase (which needs ALL groups to
  /// answer) would then starve forever after a multi-replica crash.
  std::map<std::uint32_t, std::size_t> ro_rot_;

  LatencyStats latencies_;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t conflict_retries_ = 0;
  std::uint64_t ro_committed_ = 0;
  std::uint64_t ro_restarts_ = 0;
  std::size_t submitted_ = 0;
};

}  // namespace shadow::core
