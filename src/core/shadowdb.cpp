#include "core/shadowdb.hpp"

#include "core/codecs.hpp"

namespace shadow::core {

SmrCluster make_smr_cluster(net::Transport& world, const ClusterOptions& options) {
  // Exactly one replication group under the classic node names (empty
  // GroupOptions): the extraction is a strict refactor of the original
  // single-cluster assembly.
  return SmrCluster{make_replication_group(world, options)};
}

PbrCluster make_pbr_cluster(net::Transport& world, const ClusterOptions& options) {
  SHADOW_REQUIRE(options.registry != nullptr);
  // A TCP cluster process must decode message types it never builds.
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  PbrCluster cluster;
  cluster.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config = detail::make_group_tob_config(
      world, options, GroupOptions{}, cluster.machines, cluster.tob_nodes);
  cluster.tob = tob::make_service(world, tob_config, cluster.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> group;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    cluster.replica_nodes.push_back(
        world.add_node("db" + std::to_string(i), cluster.machines[i]));
    (i < options.db_replicas ? group : spares).push_back(cluster.replica_nodes.back());
  }
  PbrConfig pbr_config = options.pbr;
  if (pbr_config.tracer == nullptr) pbr_config.tracer = options.tracer;
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<PbrReplica>(
        world, cluster.replica_nodes[i], *cluster.tob.nodes[i],
        detail::make_loaded_engine(options, i), options.registry, group, spares, pbr_config,
        options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    cluster.replicas.push_back(std::move(replica));
  }
  return cluster;
}

ChainCluster make_chain_cluster(net::Transport& world, const ClusterOptions& options,
                                ChainConfig chain_config) {
  SHADOW_REQUIRE(options.registry != nullptr);
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  ChainCluster cluster;
  cluster.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config = detail::make_group_tob_config(
      world, options, GroupOptions{}, cluster.machines, cluster.tob_nodes);
  cluster.tob = tob::make_service(world, tob_config, cluster.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> chain;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    cluster.replica_nodes.push_back(
        world.add_node("db" + std::to_string(i), cluster.machines[i]));
    (i < options.db_replicas ? chain : spares).push_back(cluster.replica_nodes.back());
  }
  if (chain_config.tracer == nullptr) chain_config.tracer = options.tracer;
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<ChainReplica>(
        world, cluster.replica_nodes[i], *cluster.tob.nodes[i],
        detail::make_loaded_engine(options, i), options.registry, chain, spares, chain_config,
        options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    cluster.replicas.push_back(std::move(replica));
  }
  return cluster;
}

}  // namespace shadow::core
