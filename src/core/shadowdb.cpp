#include "core/shadowdb.hpp"

#include "core/codecs.hpp"

namespace shadow::core {

db::EngineTraits engine_for_replica(const ClusterOptions& options, std::size_t index) {
  if (!options.engines.empty()) return options.engines[index % options.engines.size()];
  // The paper's diversity deployment: H2 primary, HSQLDB backup, Derby spare.
  switch (index % 3) {
    case 0: return db::make_h2_traits();
    case 1: return db::make_hsqldb_traits();
    default: return db::make_derby_traits();
  }
}

namespace {

tob::TobConfig make_tob_config(net::Transport& world, const ClusterOptions& options,
                               std::vector<net::HostId>& machines,
                               std::vector<NodeId>& tob_nodes) {
  tob::TobConfig config;
  config.protocol = options.protocol;
  config.profile.tier = options.tob_tier;
  config.batch_max = options.tob_batch_max;
  config.max_outstanding = options.tob_max_outstanding;
  config.adaptive_batching = options.tob_adaptive_batching;
  config.batch_min = options.tob_batch_min;
  config.tracer = options.tracer;
  config.paxos.tracer = options.tracer;
  config.two_third.tracer = options.tracer;
  // TwoThird needs n > 3f; Paxos needs a majority: both satisfied by the
  // requested machine count (callers pick 3 for Paxos, 4 for TwoThird).
  for (std::size_t i = 0; i < options.machines; ++i) {
    machines.push_back(world.add_host());
    tob_nodes.push_back(world.add_node("tob" + std::to_string(i), machines.back()));
  }
  config.nodes = tob_nodes;
  return config;
}

std::shared_ptr<db::Engine> make_loaded_engine(const ClusterOptions& options,
                                               std::size_t index) {
  auto engine = std::make_shared<db::Engine>(engine_for_replica(options, index));
  if (options.loader) options.loader(*engine);
  return engine;
}

}  // namespace

SmrCluster make_smr_cluster(net::Transport& world, const ClusterOptions& options) {
  SHADOW_REQUIRE(options.registry != nullptr);
  // A TCP cluster process must decode message types it never builds.
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  SmrCluster cluster;
  cluster.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config =
      make_tob_config(world, options, cluster.machines, cluster.tob_nodes);
  cluster.tob = tob::make_service(world, tob_config, cluster.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> group;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    cluster.replica_nodes.push_back(
        world.add_node("db" + std::to_string(i), cluster.machines[i]));
    (i < options.db_replicas ? group : spares).push_back(cluster.replica_nodes.back());
  }
  SmrConfig smr_config = options.smr;
  if (smr_config.tracer == nullptr) smr_config.tracer = options.tracer;
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<SmrReplica>(
        world, cluster.replica_nodes[i], *cluster.tob.nodes[i],
        make_loaded_engine(options, i), options.registry, group, spares, smr_config,
        options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    cluster.replicas.push_back(std::move(replica));
  }
  if (smr_config.pipelined_execution) {
    // Adaptive batching senses downstream congestion through the co-located
    // replica's executor pipeline: a deep queue means the DB stage is the
    // bottleneck and bigger batches amortize consensus better.
    for (std::size_t i = 0; i < total; ++i) {
      if (!world.is_local(cluster.replica_nodes[i])) continue;
      SmrReplica* replica = cluster.replicas[i].get();
      cluster.tob.nodes[i]->set_backlog_probe(
          [replica] { return replica->pipeline_depth(); });
    }
  }
  return cluster;
}

PbrCluster make_pbr_cluster(net::Transport& world, const ClusterOptions& options) {
  SHADOW_REQUIRE(options.registry != nullptr);
  // A TCP cluster process must decode message types it never builds.
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  PbrCluster cluster;
  cluster.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config =
      make_tob_config(world, options, cluster.machines, cluster.tob_nodes);
  cluster.tob = tob::make_service(world, tob_config, cluster.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> group;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    cluster.replica_nodes.push_back(
        world.add_node("db" + std::to_string(i), cluster.machines[i]));
    (i < options.db_replicas ? group : spares).push_back(cluster.replica_nodes.back());
  }
  PbrConfig pbr_config = options.pbr;
  if (pbr_config.tracer == nullptr) pbr_config.tracer = options.tracer;
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<PbrReplica>(
        world, cluster.replica_nodes[i], *cluster.tob.nodes[i],
        make_loaded_engine(options, i), options.registry, group, spares, pbr_config,
        options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    cluster.replicas.push_back(std::move(replica));
  }
  return cluster;
}

ChainCluster make_chain_cluster(net::Transport& world, const ClusterOptions& options,
                                ChainConfig chain_config) {
  SHADOW_REQUIRE(options.registry != nullptr);
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  ChainCluster cluster;
  cluster.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config =
      make_tob_config(world, options, cluster.machines, cluster.tob_nodes);
  cluster.tob = tob::make_service(world, tob_config, cluster.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> chain;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    cluster.replica_nodes.push_back(
        world.add_node("db" + std::to_string(i), cluster.machines[i]));
    (i < options.db_replicas ? chain : spares).push_back(cluster.replica_nodes.back());
  }
  if (chain_config.tracer == nullptr) chain_config.tracer = options.tracer;
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<ChainReplica>(
        world, cluster.replica_nodes[i], *cluster.tob.nodes[i],
        make_loaded_engine(options, i), options.registry, chain, spares, chain_config,
        options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    cluster.replicas.push_back(std::move(replica));
  }
  return cluster;
}

}  // namespace shadow::core
