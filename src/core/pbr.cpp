#include "core/pbr.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace shadow::core {

namespace {

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

constexpr std::uint64_t kAckCost = 18;      // µs to process one ack
constexpr std::uint64_t kForwardCost = 34;  // µs to marshal one forward

}  // namespace

PbrReplica::PbrReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
                       std::shared_ptr<db::Engine> engine,
                       std::shared_ptr<const workload::ProcedureRegistry> registry,
                       std::vector<NodeId> initial_group, std::vector<NodeId> spares,
                       PbrConfig config, ServerCosts costs)
    : world_(world),
      self_(self),
      tob_(tob),
      executor_(std::move(engine), std::move(registry), costs),
      config_(config),
      costs_(costs),
      members_(std::move(initial_group)),
      spares_(std::move(spares)) {
  SHADOW_REQUIRE(!members_.empty());
  SHADOW_REQUIRE_MSG(world_.host_of(self_) == world_.host_of(tob_.node()),
                     "PBR replicas are co-located with their broadcast service node");
  primary_ = members_[0];
  group_size_target_ = members_.size();
  reconfig_client_id_ = ClientId{0x50000000u + self_.value};
  snap_rx_ = repl::StateTransfer::Receiver({config_.tracer, self_});
  if (!contains(members_, self_)) state_ = State::kSpare;
  for (NodeId b : members_) {
    if (b != self_) recovered_backups_.insert(b.value);
  }

  // Hand TOB deliveries to the replica process through a loopback message so
  // the replica acts under its own identity (and stops acting when crashed).
  tob_.subscribe_local([this](net::NodeContext& ctx, Slot, std::uint64_t, const tob::Command& cmd) {
    ctx.send(self_, net::make_msg(kPbrDeliverHeader, cmd));
  });
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
  if (config_.enable_failure_detection) {
    world_.schedule_timer_for_node(self_, world_.now() + config_.hb_period,
                                   [this](net::NodeContext& ctx) { on_heartbeat_tick(ctx); });
  }
}

// --------------------------------------------------------------- messages --

void PbrReplica::on_message(net::NodeContext& ctx, const net::Message& msg) {
  // Any traffic from a configuration member counts as a liveness signal.
  last_heard_[msg.from.value] = ctx.now();

  if (msg.header == kPbrDeliverHeader) {
    on_deliver(ctx, net::msg_body<tob::Command>(msg));
    return;
  }
  if (msg.header == workload::kTxnRequestHeader) {
    on_client_request(ctx, net::msg_body<workload::TxnRequest>(msg));
    return;
  }
  if (msg.header == kReplFwdHeader) {
    on_forward(ctx, net::msg_body<ForwardBody>(msg));
    return;
  }
  if (msg.header == kPbrAckHeader) {
    on_ack(ctx, msg.from, net::msg_body<AckBody>(msg));
    return;
  }
  if (msg.header == kPbrElectHeader) {
    on_elect(ctx, msg.from, net::msg_body<ElectBody>(msg));
    return;
  }
  if (msg.header == kPbrHbHeader) {
    return;  // the blanket last_heard_ update above is all a heartbeat does
  }
  if (msg.header == kPbrCatchupHeader) {
    const auto& body = net::msg_body<CatchupBody>(msg);
    if (body.config != config_seq_) return;
    for (const auto& [order, req] : body.txns) {
      if (order != executed_order_ + 1) continue;  // already have it
      execute_and_cache(ctx, order, req, /*send_response=*/false);
    }
    state_ = State::kNormal;
    if (config_.tracer) config_.tracer->recover(ctx.now(), self_, executed_order_);
    ctx.send(msg.from, net::make_msg(kPbrRecoveredHeader, SnapDoneBody{config_seq_}));
    apply_buffered_forwards(ctx);
    return;
  }
  if (msg.header == kPbrSnapBeginHeader) {
    const auto& body = net::msg_body<SnapBeginBody>(msg);
    if (body.config != config_seq_) return;
    snap_rx_.begin_full(executor_.engine(), body);
    install_snapshot_dedup(executor_, body);
    return;
  }
  if (msg.header == kPbrSnapBatchHeader) {
    snap_rx_.on_batch(ctx, executor_.engine(), net::msg_body<SnapBatchBody>(msg), msg.from);
    return;
  }
  if (msg.header == kPbrSnapDoneHeader) {
    const auto& body = net::msg_body<SnapDoneBody>(msg);
    if (body.config != config_seq_ || !snap_rx_.awaiting()) return;
    executed_order_ = snap_rx_.finish(executor_.engine());
    next_order_ = std::max(next_order_, executed_order_);
    state_ = State::kNormal;
    if (config_.tracer) {
      config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kDone, 0, msg.from);
      config_.tracer->recover(ctx.now(), self_, executed_order_);
    }
    ctx.send(msg.from, net::make_msg(kPbrRecoveredHeader, SnapDoneBody{config_seq_}));
    apply_buffered_forwards(ctx);
    return;
  }
  if (msg.header == kPbrRecoveredHeader) {
    const auto& body = net::msg_body<SnapDoneBody>(msg);
    if (body.config != config_seq_) return;
    backup_recovered(ctx, msg.from);
    return;
  }
}

// ------------------------------------------------------------- normal case --

void PbrReplica::on_client_request(net::NodeContext& ctx, const workload::TxnRequest& req) {
  // A deposed replica (or a spare) is not part of the configuration at all:
  // point the client at the new membership rather than asking it to wait.
  if (!contains(members_, self_) && !members_.empty()) {
    ctx.send(req.reply_to, net::make_msg(kPbrRedirectHeader,
                                         RedirectBody{members_.front(), config_seq_, false}));
    return;
  }
  if (state_ != State::kNormal || primary_ != self_ || stopped_) {
    redirect(ctx, req.reply_to, /*busy=*/primary_ == self_ || stopped_);
    return;
  }
  if (!accepting()) {
    redirect(ctx, req.reply_to, /*busy=*/true);
    return;
  }

  // (ii) upon first reception, execute and commit; duplicates are no-ops
  // answered from the dedup table.
  const TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (exec.duplicate) {
    if (config_.tracer) {
      config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, obs::kUnordered, true,
                                  exec.response.committed, req.proc);
    }
    ctx.send(req.reply_to, workload::make_response_msg(exec.response));
    return;
  }
  const std::uint64_t order = ++next_order_;
  executed_order_ = order;
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, order, false,
                                exec.response.committed, req.proc);
  }
  txn_cache_.emplace_back(order, req);
  if (txn_cache_.size() > config_.txn_cache_max) txn_cache_.pop_front();

  // (iii) forward to every backup, recovered or still recovering (the
  // latter buffer); (iv) wait for acks from recovered backups only.
  Outstanding out;
  out.request = req;
  out.response = exec.response;
  out.waiting = recovered_backups_;
  const net::Message fwd = net::make_msg(kReplFwdHeader, ForwardBody{config_seq_, order, req});
  for (NodeId member : members_) {
    if (member == self_) continue;
    ctx.charge(kForwardCost);
    ctx.send(member, fwd);
  }
  if (out.waiting.empty()) {
    ctx.send(req.reply_to, workload::make_response_msg(out.response));
    ++responses_sent_;
    return;
  }
  outstanding_.emplace(order, std::move(out));
}

void PbrReplica::on_forward(net::NodeContext& ctx, const ForwardBody& fwd) {
  if (fwd.config != config_seq_ || stopped_) return;  // stale configuration
  if (state_ == State::kRecovering) {
    buffered_forwards_.push_back(fwd);
    return;
  }
  if (state_ != State::kNormal || primary_ == self_) return;
  if (fwd.order != executed_order_ + 1) return;  // duplicate (FIFO channels)
  execute_and_cache(ctx, fwd.order, fwd.request, /*send_response=*/false);
  ctx.send(primary_, net::make_msg(kPbrAckHeader, AckBody{config_seq_, fwd.order}));
}

void PbrReplica::on_ack(net::NodeContext& ctx, NodeId from, const AckBody& ack) {
  if (ack.config != config_seq_) return;
  ctx.charge(kAckCost);
  auto it = outstanding_.find(ack.order);
  if (it == outstanding_.end()) return;
  it->second.waiting.erase(from.value);
  if (it->second.waiting.empty()) {
    // (iv) all recovered backups acknowledged: notify the client.
    ctx.send(it->second.request.reply_to, workload::make_response_msg(it->second.response));
    ++responses_sent_;
    outstanding_.erase(it);
  }
}

void PbrReplica::execute_and_cache(net::NodeContext& ctx, std::uint64_t order,
                                   const workload::TxnRequest& req, bool send_response) {
  const TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, order, exec.duplicate,
                                exec.response.committed, req.proc);
  }
  executed_order_ = order;
  next_order_ = std::max(next_order_, order);
  txn_cache_.emplace_back(order, req);
  if (txn_cache_.size() > config_.txn_cache_max) txn_cache_.pop_front();
  if (send_response) ctx.send(req.reply_to, workload::make_response_msg(exec.response));
}

void PbrReplica::apply_buffered_forwards(net::NodeContext& ctx) {
  while (!buffered_forwards_.empty()) {
    const ForwardBody fwd = buffered_forwards_.front();
    buffered_forwards_.pop_front();
    if (fwd.config != config_seq_) continue;
    if (fwd.order != executed_order_ + 1) continue;
    execute_and_cache(ctx, fwd.order, fwd.request, /*send_response=*/false);
    ctx.send(primary_, net::make_msg(kPbrAckHeader, AckBody{config_seq_, fwd.order}));
  }
}

void PbrReplica::redirect(net::NodeContext& ctx, NodeId to, bool busy) {
  // An unknown primary (mid-election) is a "try again later", not a target.
  if (primary_.value == UINT32_MAX) busy = true;
  ctx.send(to, net::make_msg(kPbrRedirectHeader, RedirectBody{primary_, config_seq_, busy}));
}

// ---------------------------------------------------------------- recovery --

void PbrReplica::on_deliver(net::NodeContext& ctx, const tob::Command& cmd) {
  const workload::TxnRequest req = workload::decode_request(cmd.payload);
  if (req.proc != kPbrReconfigProc) return;
  SHADOW_CHECK(req.params.size() >= 3);
  const auto g = static_cast<ConfigSeq>(req.params[0].as_int());
  if (g != config_seq_) return;  // only the first proposal counts (step 3)

  std::vector<NodeId> new_members;
  for (std::size_t i = 2; i < req.params.size(); ++i) {
    new_members.push_back(NodeId{static_cast<std::uint32_t>(req.params[i].as_int())});
  }
  config_seq_ = g + 1;
  members_ = new_members;
  outstanding_.clear();
  recovered_backups_.clear();
  buffered_forwards_.clear();
  snap_rx_.reset();
  stopped_ = false;
  primary_ = NodeId{UINT32_MAX};

  if (!contains(members_, self_)) {
    state_ = state_ == State::kSpare ? State::kSpare : State::kDeposed;
    return;
  }
  state_ = State::kElecting;
  const net::Time now = ctx.now();
  for (NodeId member : members_) last_heard_[member.value] = now;

  // Step 3: send (g+1, seq_r) to all members of the new configuration.
  const net::Message elect = net::make_msg(kPbrElectHeader, ElectBody{config_seq_, executed_order_});
  for (NodeId member : members_) {
    if (member != self_) ctx.send(member, elect);
  }
  pending_elects_[config_seq_][self_.value] = executed_order_;
  maybe_finish_election(ctx);
}

void PbrReplica::on_elect(net::NodeContext& ctx, NodeId from, const ElectBody& elect) {
  pending_elects_[elect.config][from.value] = elect.executed;
  if (elect.config == config_seq_ && state_ == State::kElecting) maybe_finish_election(ctx);
}

void PbrReplica::maybe_finish_election(net::NodeContext& ctx) {
  const auto& elects = pending_elects_[config_seq_];
  for (NodeId member : members_) {
    if (elects.count(member.value) == 0) return;  // step 4: wait for all
  }
  // Largest sequence number wins; ties go to the smallest identifier.
  NodeId leader = members_[0];
  std::uint64_t best = elects.at(members_[0].value);
  for (NodeId member : members_) {
    const std::uint64_t seq = elects.at(member.value);
    if (seq > best || (seq == best && member.value < leader.value)) {
      leader = member;
      best = seq;
    }
  }
  primary_ = leader;

  if (primary_ != self_) {
    // Step 5/6 happen when the primary's catch-up or snapshot arrives; until
    // then we are recovering (we might already be fully up to date — the
    // primary sends an empty catch-up in that case).
    state_ = executed_order_ == best ? State::kNormal : State::kRecovering;
    if (state_ == State::kNormal) {
      ctx.send(primary_, net::make_msg(kPbrRecoveredHeader, SnapDoneBody{config_seq_}));
    }
    return;
  }

  // We are the new primary.
  state_ = State::kNormal;
  next_order_ = executed_order_;
  for (NodeId member : members_) {
    if (member == self_) continue;
    const std::uint64_t seq = elects.at(member.value);
    if (seq == executed_order_) {
      recovered_backups_.insert(member.value);
    } else {
      send_state_to(ctx, member, seq);
    }
  }
}

void PbrReplica::send_state_to(net::NodeContext& ctx, NodeId backup, std::uint64_t backup_seq) {
  // Step 5: catch-up from the bounded cache where possible, else snapshot.
  const bool cache_covers =
      !txn_cache_.empty() && txn_cache_.front().first <= backup_seq + 1;
  if (cache_covers || backup_seq == executed_order_) {
    CatchupBody body;
    body.config = config_seq_;
    for (const auto& [order, req] : txn_cache_) {
      if (order > backup_seq) body.txns.emplace_back(order, req);
    }
    ctx.send(backup, net::make_msg(kPbrCatchupHeader, std::move(body)));
    return;
  }

  // Snapshot path: delegate to the shared state-transfer engine (serialize
  // here, cost charged on this machine; the backup pays insertion per batch).
  repl::StateTransfer::SendV1 spec;
  spec.headers = {kPbrSnapBeginHeader, kPbrSnapBatchHeader, kPbrSnapDoneHeader, ""};
  spec.batch_bytes = config_.snapshot_batch_bytes;
  spec.begin.config = config_seq_;
  spec.begin.order = executed_order_;
  collect_snapshot_dedup(executor_, spec.begin);
  spec.done = SnapDoneBody{config_seq_};
  spec.tracer = config_.tracer;
  repl::StateTransfer::send_full_v1(ctx, executor_.engine(), backup, std::move(spec));
}

void PbrReplica::backup_recovered(net::NodeContext& ctx, NodeId backup) {
  (void)ctx;
  if (!contains(members_, backup) || primary_ != self_) return;
  recovered_backups_.insert(backup.value);
}

// --------------------------------------------------------- failure detection --

void PbrReplica::on_heartbeat_tick(net::NodeContext& ctx) {
  if (state_ == State::kNormal || state_ == State::kElecting ||
      state_ == State::kRecovering) {
    for (NodeId member : members_) {
      if (member != self_) ctx.send(member, net::make_signal(kPbrHbHeader));
    }
    const net::Time now = ctx.now();
    std::vector<NodeId> suspects;
    for (NodeId member : members_) {
      if (member == self_) continue;
      auto [it, first] = last_heard_.try_emplace(member.value, now);
      (void)first;
      if (now - it->second >= config_.suspect_timeout) {
        const std::uint64_t key = (config_seq_ << 32) | member.value;
        if (proposed_.insert(key).second) suspects.push_back(member);
      }
    }
    if (!suspects.empty()) suspect_and_propose(ctx, suspects);
  }
  ctx.set_timer(config_.hb_period, [this](net::NodeContext& c) { on_heartbeat_tick(c); });
}

void PbrReplica::suspect_and_propose(net::NodeContext& ctx, const std::vector<NodeId>& suspects) {
  // Step 1: stop executing in the current configuration.
  stopped_ = true;
  outstanding_.clear();

  // Step 2: propose the new configuration via the total order broadcast.
  std::vector<NodeId> proposal;
  for (NodeId member : members_) {
    if (!contains(suspects, member)) proposal.push_back(member);
  }
  for (NodeId spare : spares_) {
    if (proposal.size() >= group_size_target_) break;
    if (!contains(proposal, spare) && !contains(suspects, spare)) proposal.push_back(spare);
  }
  if (proposal.empty()) return;  // nobody left to run the system

  workload::TxnRequest req;
  req.client = reconfig_client_id_;
  req.seq = ++reconfig_seq_;
  req.reply_to = self_;
  req.proc = kPbrReconfigProc;
  req.params = {db::Value(static_cast<std::int64_t>(config_seq_)),
                db::Value(static_cast<std::int64_t>(self_.value))};
  for (NodeId member : proposal) {
    req.params.push_back(db::Value(static_cast<std::int64_t>(member.value)));
  }
  tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
  ctx.send(tob_.node(), net::make_msg(tob::kBroadcastHeader, std::move(body)));
}

}  // namespace shadow::core
