#include "core/rosnap.hpp"

#include "core/migrate.hpp"
#include "core/twopc.hpp"
#include "obs/trace.hpp"
#include "workload/bank.hpp"

namespace shadow::core {

namespace {

/// The read-only plan of `req`'s share at one group: point selects for every
/// local partition key, or the procedure's scan for key-less reads
/// (bank.audit's sum). Mirrors the procedure bodies (workload/bank.cpp) the
/// same way the 2PC local planners in core/twopc.cpp do. `sum_column >= 0`
/// asks serve_read to sum that column over the rows this group OWNS and
/// answer one synthesized row: every engine holds the full loader image but
/// only maintains its own partition, so a raw engine-side aggregate would
/// also count the other groups' stale unowned rows.
struct RoPlan {
  std::vector<db::Statement> stmts;
  int sum_column = -1;
};

RoPlan ro_plan(const std::string& table, const workload::TxnRequest& req,
               const std::vector<std::int64_t>& local_keys) {
  RoPlan plan;
  if (req.proc == workload::bank::kAuditProc) {
    plan.stmts.push_back(db::make_scan(workload::bank::kTable, {}));
    plan.sum_column = 2;
    return plan;
  }
  for (const std::int64_t k : local_keys) {
    plan.stmts.push_back(db::make_select(table, {db::Value(k)}));
  }
  return plan;
}

}  // namespace

RoServer::RoServer(NodeId self, GroupId group, const RoutingView& view, TxnExecutor& executor,
                   const XsCoordinator* xs, const RangeMigrator* mig, Hooks hooks)
    : self_(self),
      group_(group),
      view_(view),
      executor_(executor),
      xs_(xs),
      mig_(mig),
      hooks_(std::move(hooks)) {}

void RoServer::count(const char* metric) const {
  if (hooks_.tracer != nullptr) hooks_.tracer->count(metric);
}

bool RoServer::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kRoSnapHeader) {
    serve_snap(ctx, net::msg_body<RoSnapBody>(msg), msg.from);
    return true;
  }
  if (msg.header == kRoReadHeader) {
    serve_read(ctx, net::msg_body<RoReadBody>(msg));
    return true;
  }
  return false;
}

void RoServer::serve_snap(net::NodeContext& ctx, const RoSnapBody& body, NodeId from) {
  if (hooks_.flush) hooks_.flush();
  RoSnapRespBody resp;
  resp.group = group_;
  resp.seq = body.seq;
  resp.serving = hooks_.serving && hooks_.serving() ? 1 : 0;
  const db::Engine& engine = executor_.engine();
  resp.position = engine.state_version();
  resp.floor = engine.min_read_version();
  // A freshly restored replica whose version chains have not re-opened yet
  // (floor above position) cannot serve ANY versioned read: advertising
  // serving=1 would let the client pin a cut here and then bounce off
  // "ro-stale" forever. Refuse instead — the client rotates to a peer.
  if (resp.floor > resp.position) resp.serving = 0;
  if (resp.serving != 0 && xs_ != nullptr) {
    resp.prepared = xs_->prepared_txns();
    resp.last_decided.assign(xs_->last_decided().begin(), xs_->last_decided().end());
    for (const XsCoordinator::DecideRecord& d : xs_->recent_decides()) {
      RoSnapRespBody::Decide e;
      e.client = d.client;
      e.seq = d.seq;
      e.decide_pos = d.decide_pos;
      e.committed = d.committed ? 1 : 0;
      e.participants = d.participants;
      resp.decides.push_back(std::move(e));
    }
  }
  count("ro.snaps");
  ctx.send(from, net::make_msg(kRoSnapRespHeader, std::move(resp)));
}

void RoServer::answer_error(net::NodeContext& ctx, const RoReadBody& body, const char* error) {
  RoReadRespBody resp;
  resp.client = body.req.client.value;
  resp.seq = body.req.seq;
  resp.group = body.group;
  resp.served_group = group_;
  resp.error = error;
  count("ro.errors");
  ctx.send(body.req.reply_to, net::make_msg(kRoReadRespHeader, std::move(resp)));
}

void RoServer::serve_read(net::NodeContext& ctx, const RoReadBody& body) {
  if (hooks_.flush) hooks_.flush();
  if (!hooks_.serving || !hooks_.serving()) {
    answer_error(ctx, body, "ro-joining");
    return;
  }
  const ShardRouter::ProcInfo* info = view_.proc_info(body.req.proc);
  const std::string table = info != nullptr ? info->table : std::string();
  // The group's share: the keys the CLIENT routed here — by the base
  // partition function (clients never see overrides). Migrated keys are the
  // forwarding decision below, exactly as in RangeMigrator::divert.
  std::vector<std::int64_t> local_keys;
  for (const std::int64_t k : view_.base().keys_of(body.req)) {
    if (view_.base().shard_of_key(k) == body.group) local_keys.push_back(k);
  }
  // Migration forwarding: keys this group donated move as a unit or not at
  // all ("ro-split" guards shares the bundled workloads never produce).
  bool any_local = false;
  bool have_target = false;
  std::optional<GroupId> target;
  for (const std::int64_t k : local_keys) {
    const std::optional<GroupId> t =
        mig_ != nullptr ? mig_->ro_forward_target(table, k, body.version) : std::nullopt;
    if (!t.has_value()) {
      any_local = true;
    } else if (!have_target) {
      have_target = true;
      target = t;
    } else if (*target != *t) {
      answer_error(ctx, body, "ro-split");
      return;
    }
  }
  if (have_target && any_local) {
    answer_error(ctx, body, "ro-split");
    return;
  }
  if (have_target) {
    if (body.hops + 1 > kRoMaxForwardHops) {
      answer_error(ctx, body, "ro-moved");
      return;
    }
    const std::vector<NodeId>& owners = view_.base().replica_targets(*target);
    if (owners.empty()) {
      answer_error(ctx, body, "ro-moved");
      return;
    }
    // The owner serves at ITS current version (the pinned version belongs to
    // the donor's log; the owner's state at any current version includes the
    // flip). The response still echoes body.group for the client's matching.
    RoReadBody fwd = body;
    ++fwd.hops;
    fwd.version = 0;
    fwd.floor = 0;
    count("ro.forwarded");
    ctx.send(owners[(self_.value + fwd.hops) % owners.size()],
             net::make_msg(kRoReadHeader, std::move(fwd)));
    return;
  }

  db::Engine& engine = executor_.engine();
  if (engine.state_version() < body.version || engine.state_version() < body.floor) {
    // Behind the pinned cut (or the client's read-your-writes floor): this
    // replica's log replay hasn't caught up. The client rotates or retries.
    answer_error(ctx, body, "ro-lagging");
    return;
  }
  const std::uint64_t version = body.version == 0 ? engine.state_version() : body.version;
  if (!engine.read_version_valid(version)) {
    answer_error(ctx, body, "ro-stale");
    return;
  }
  // Pin the version against GC for the (synchronous) read, then serve every
  // statement from the version chains — no transaction, no locks.
  const std::uint64_t reader = engine.register_reader(version);
  RoReadRespBody resp;
  resp.client = body.req.client.value;
  resp.seq = body.req.seq;
  resp.group = body.group;
  resp.served_group = group_;
  resp.version = version;
  resp.ok = 1;
  const RoPlan plan = ro_plan(table, body.req, local_keys);
  std::uint64_t cost = hooks_.costs.per_txn_us + hooks_.costs.per_stmt_us * plan.stmts.size();
  for (const db::Statement& stmt : plan.stmts) {
    const db::ExecResult r = engine.read_at(stmt, version);
    cost += r.cost_us;
    if (plan.sum_column >= 0) {
      // Aggregate share: sum over the rows this group owns (routing view,
      // key = primary-key column 0) and travel as one synthesized row — the
      // TxnResponse has no aggregate slot, so the client adds shares up.
      std::int64_t sum = 0;
      for (const db::Row& row : r.rows) {
        if (view_.shard_of(stmt.table, row[0].as_int()) != group_) continue;
        sum += row[static_cast<std::size_t>(plan.sum_column)].as_int();
      }
      resp.rows.push_back({db::Value(sum)});
      continue;
    }
    for (const db::Row& row : r.rows) resp.rows.push_back(row);
  }
  engine.release_reader(reader);
  ctx.charge(cost);
  count("ro.served");
  ctx.send(body.req.reply_to, net::make_msg(kRoReadRespHeader, std::move(resp)));
}

}  // namespace shadow::core
