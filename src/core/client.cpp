#include "core/client.hpp"

#include "core/pbr.hpp"
#include "core/twopc.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

DbClient::DbClient(net::Transport& world, NodeId self, ClientId id, Options options,
                   NextTxnFn next_txn)
    : world_(world),
      self_(self),
      id_(id),
      options_(std::move(options)),
      next_txn_(std::move(next_txn)) {
  backoff_state_ = 0x9e3779b97f4a7c15ULL ^ (std::uint64_t{id.value} * 0xbf58476d1ce4e5b9ULL);
  SHADOW_REQUIRE(!options_.targets.empty() || options_.router != nullptr);
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
}

void DbClient::start(net::Time initial_delay) {
  world_.schedule_timer_for_node(self_, world_.now() + initial_delay,
                                 [this](net::NodeContext& ctx) { submit_next(ctx); });
}

void DbClient::submit_next(net::NodeContext& ctx) {
  if (submitted_ >= options_.txn_limit) {
    done_ = true;
    return;
  }
  ++submitted_;
  auto [proc, params] = next_txn_();
  workload::TxnRequest req;
  req.client = id_;
  req.seq = ++seq_;
  req.reply_to = self_;
  req.proc = std::move(proc);
  req.params = std::move(params);
  in_flight_ = std::move(req);
  sent_at_ = ctx.now();
  if (options_.tracer) {
    options_.tracer->txn_begin(ctx.now(), self_, id_, in_flight_->seq, in_flight_->proc);
  }
  send_current(ctx);
}

void DbClient::send_current(net::NodeContext& ctx) {
  SHADOW_CHECK(in_flight_.has_value());
  ctx.charge(options_.client_cpu_us);
  // Routed clients pick the pool per request (the coordinator group's TOB
  // nodes); target rotation on retry stays within the pool.
  const std::vector<NodeId>& pool =
      options_.router != nullptr ? options_.router->route(*in_flight_) : options_.targets;
  const NodeId target = pool[target_idx_ % pool.size()];
  if (options_.mode == Mode::kDirect) {
    ctx.send(target, workload::make_request_msg(*in_flight_));
  } else {
    ClientId wire_id = id_;
    if (options_.router != nullptr && options_.router->cross_shard(*in_flight_)) {
      // Mark the broadcast itself: the delivery path spots the control bit
      // in the decided batch and takes the serial 2PC path without decoding.
      wire_id = ClientId{kXsBeginBit | (id_.value & kXsClientMask)};
    }
    tob::BroadcastBody body{
        tob::Command{wire_id, in_flight_->seq, workload::encode_request(*in_flight_)}};
    ctx.send(target, net::make_msg(tob::kBroadcastHeader, std::move(body)));
  }
  timeout_timer_ = ctx.set_timer(options_.retry_timeout,
                                 [this](net::NodeContext& c) { on_timeout(c); });
}

void DbClient::on_timeout(net::NodeContext& ctx) {
  if (!in_flight_ || done_) return;
  ++retries_;
  ++target_idx_;  // rotate: the old target may have crashed
  send_current(ctx);
}

void DbClient::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == workload::kTxnResponseHeader) {
    const auto& resp = net::msg_body<workload::TxnResponse>(msg);
    if (!in_flight_ || resp.seq != in_flight_->seq) return;  // late duplicate
    finish_current(ctx, resp);
    return;
  }
  if (msg.header == kPbrRedirectHeader) {
    if (!in_flight_) return;
    const auto& body = net::msg_body<RedirectBody>(msg);
    ctx.cancel_timer(timeout_timer_);
    const bool unknown_primary = body.primary.value == UINT32_MAX;
    if (!body.busy && !unknown_primary) {
      // Point directly at the new primary and resend immediately.
      for (std::size_t i = 0; i < options_.targets.size(); ++i) {
        if (options_.targets[i] == body.primary) target_idx_ = i;
      }
      if (options_.targets[target_idx_ % options_.targets.size()] != body.primary) {
        options_.targets.push_back(body.primary);
        target_idx_ = options_.targets.size() - 1;
      }
      consecutive_busy_ = 0;
      ++retries_;
      send_current(ctx);
    } else {
      // Recovery in progress (or the primary is not known yet): back off,
      // then retry the same request. A node that stays "busy" for long may
      // itself be out of the configuration — rotate away from it.
      if (++consecutive_busy_ >= 8) {
        consecutive_busy_ = 0;
        ++target_idx_;
      }
      ctx.set_timer(options_.busy_backoff, [this](net::NodeContext& c) {
        if (in_flight_ && !done_) {
          ++retries_;
          send_current(c);
        }
      });
    }
    return;
  }
  // tob-ack and other service chatter is not the transaction answer.
}

void DbClient::finish_current(net::NodeContext& ctx, const workload::TxnResponse& resp) {
  consecutive_busy_ = 0;
  ctx.cancel_timer(timeout_timer_);
  ctx.charge(options_.client_cpu_us);
  const bool transient_abort = resp.error == "xs-lock-conflict" ||
                               resp.error == "range-frozen" ||
                               resp.error == "xs-epoch-retry";
  if (!resp.committed && options_.retry_conflict_aborts && transient_abort) {
    // A no-wait 2PC vote-NO (lock race), a key range frozen mid-migration,
    // or a routing-epoch mismatch: the transaction lost a race, not a
    // semantic check. Resubmit it as a fresh transaction (new seq — the old
    // one is terminally aborted in every replica's dedup table). The seq
    // bump happens NOW so the duplicate abort answers from the other
    // coordinator replicas keep being filtered as late duplicates; the
    // resend itself waits out a jittered backoff so it does not re-collide
    // with the winner that still holds the contended locks.
    if (options_.tracer) options_.tracer->txn_ack(ctx.now(), self_, id_, resp.seq, false);
    ++conflict_retries_;
    in_flight_->seq = ++seq_;
    net::Time delay = 0;
    if (options_.conflict_backoff_us > 0) {
      const std::uint32_t streak = conflict_streak_ < 6 ? conflict_streak_ : 6;
      backoff_state_ = backoff_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const net::Time span = options_.conflict_backoff_us << streak;
      delay = options_.conflict_backoff_us + (backoff_state_ >> 33) % span;
    }
    ++conflict_streak_;
    ctx.set_timer(delay, [this](net::NodeContext& c) {
      if (!in_flight_ || done_) return;
      sent_at_ = c.now();
      if (options_.tracer) {
        options_.tracer->txn_begin(c.now(), self_, id_, in_flight_->seq, in_flight_->proc);
      }
      send_current(c);
    });
    return;
  }
  conflict_streak_ = 0;
  latencies_.add(ctx.now() - sent_at_);
  if (options_.tracer) {
    options_.tracer->txn_ack(ctx.now(), self_, id_, resp.seq, resp.committed);
  }
  if (resp.committed) {
    ++committed_;
    if (commit_hook_) commit_hook_(ctx.now());
  } else {
    ++aborted_;
  }
  in_flight_.reset();
  submit_next(ctx);
}

}  // namespace shadow::core
