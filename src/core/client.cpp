#include "core/client.hpp"

#include "core/pbr.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

DbClient::DbClient(net::Transport& world, NodeId self, ClientId id, Options options,
                   NextTxnFn next_txn)
    : world_(world),
      self_(self),
      id_(id),
      options_(std::move(options)),
      next_txn_(std::move(next_txn)) {
  SHADOW_REQUIRE(!options_.targets.empty());
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
}

void DbClient::start(net::Time initial_delay) {
  world_.schedule_timer_for_node(self_, world_.now() + initial_delay,
                                 [this](net::NodeContext& ctx) { submit_next(ctx); });
}

void DbClient::submit_next(net::NodeContext& ctx) {
  if (submitted_ >= options_.txn_limit) {
    done_ = true;
    return;
  }
  ++submitted_;
  auto [proc, params] = next_txn_();
  workload::TxnRequest req;
  req.client = id_;
  req.seq = ++seq_;
  req.reply_to = self_;
  req.proc = std::move(proc);
  req.params = std::move(params);
  in_flight_ = std::move(req);
  sent_at_ = ctx.now();
  if (options_.tracer) {
    options_.tracer->txn_begin(ctx.now(), self_, id_, in_flight_->seq, in_flight_->proc);
  }
  send_current(ctx);
}

void DbClient::send_current(net::NodeContext& ctx) {
  SHADOW_CHECK(in_flight_.has_value());
  ctx.charge(options_.client_cpu_us);
  const NodeId target = options_.targets[target_idx_ % options_.targets.size()];
  if (options_.mode == Mode::kDirect) {
    ctx.send(target, workload::make_request_msg(*in_flight_));
  } else {
    tob::BroadcastBody body{
        tob::Command{id_, in_flight_->seq, workload::encode_request(*in_flight_)}};
    ctx.send(target, net::make_msg(tob::kBroadcastHeader, std::move(body)));
  }
  timeout_timer_ = ctx.set_timer(options_.retry_timeout,
                                 [this](net::NodeContext& c) { on_timeout(c); });
}

void DbClient::on_timeout(net::NodeContext& ctx) {
  if (!in_flight_ || done_) return;
  ++retries_;
  ++target_idx_;  // rotate: the old target may have crashed
  send_current(ctx);
}

void DbClient::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == workload::kTxnResponseHeader) {
    const auto& resp = net::msg_body<workload::TxnResponse>(msg);
    if (!in_flight_ || resp.seq != in_flight_->seq) return;  // late duplicate
    finish_current(ctx, resp);
    return;
  }
  if (msg.header == kPbrRedirectHeader) {
    if (!in_flight_) return;
    const auto& body = net::msg_body<RedirectBody>(msg);
    ctx.cancel_timer(timeout_timer_);
    const bool unknown_primary = body.primary.value == UINT32_MAX;
    if (!body.busy && !unknown_primary) {
      // Point directly at the new primary and resend immediately.
      for (std::size_t i = 0; i < options_.targets.size(); ++i) {
        if (options_.targets[i] == body.primary) target_idx_ = i;
      }
      if (options_.targets[target_idx_ % options_.targets.size()] != body.primary) {
        options_.targets.push_back(body.primary);
        target_idx_ = options_.targets.size() - 1;
      }
      consecutive_busy_ = 0;
      ++retries_;
      send_current(ctx);
    } else {
      // Recovery in progress (or the primary is not known yet): back off,
      // then retry the same request. A node that stays "busy" for long may
      // itself be out of the configuration — rotate away from it.
      if (++consecutive_busy_ >= 8) {
        consecutive_busy_ = 0;
        ++target_idx_;
      }
      ctx.set_timer(options_.busy_backoff, [this](net::NodeContext& c) {
        if (in_flight_ && !done_) {
          ++retries_;
          send_current(c);
        }
      });
    }
    return;
  }
  // tob-ack and other service chatter is not the transaction answer.
}

void DbClient::finish_current(net::NodeContext& ctx, const workload::TxnResponse& resp) {
  consecutive_busy_ = 0;
  ctx.cancel_timer(timeout_timer_);
  ctx.charge(options_.client_cpu_us);
  latencies_.add(ctx.now() - sent_at_);
  if (options_.tracer) {
    options_.tracer->txn_ack(ctx.now(), self_, id_, resp.seq, resp.committed);
  }
  if (resp.committed) {
    ++committed_;
    if (commit_hook_) commit_hook_(ctx.now());
  } else {
    ++aborted_;
  }
  in_flight_.reset();
  submit_next(ctx);
}

}  // namespace shadow::core
