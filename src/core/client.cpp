#include "core/client.hpp"

#include <algorithm>

#include "core/pbr.hpp"
#include "core/twopc.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

DbClient::DbClient(net::Transport& world, NodeId self, ClientId id, Options options,
                   NextTxnFn next_txn)
    : world_(world),
      self_(self),
      id_(id),
      options_(std::move(options)),
      next_txn_(std::move(next_txn)) {
  backoff_state_ = 0x9e3779b97f4a7c15ULL ^ (std::uint64_t{id.value} * 0xbf58476d1ce4e5b9ULL);
  SHADOW_REQUIRE(!options_.targets.empty() || options_.router != nullptr);
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
}

void DbClient::start(net::Time initial_delay) {
  world_.schedule_timer_for_node(self_, world_.now() + initial_delay,
                                 [this](net::NodeContext& ctx) { submit_next(ctx); });
}

void DbClient::submit_next(net::NodeContext& ctx) {
  if (submitted_ >= options_.txn_limit) {
    done_ = true;
    return;
  }
  ++submitted_;
  auto [proc, params] = next_txn_();
  workload::TxnRequest req;
  req.client = id_;
  req.seq = ++seq_;
  req.reply_to = self_;
  req.proc = std::move(proc);
  req.params = std::move(params);
  in_flight_ = std::move(req);
  sent_at_ = ctx.now();
  if (options_.tracer) {
    options_.tracer->txn_begin(ctx.now(), self_, id_, in_flight_->seq, in_flight_->proc);
  }
  send_current(ctx);
}

void DbClient::send_current(net::NodeContext& ctx) {
  SHADOW_CHECK(in_flight_.has_value());
  // Classification happens HERE, per send — never cached across retries: a
  // conflict retry or timeout re-routes through the current routing state,
  // and read-only procedures peel off onto the lock-free snapshot path.
  if (ro_eligible(*in_flight_)) {
    start_ro_attempt(ctx);
    return;
  }
  ctx.charge(options_.client_cpu_us);
  // Routed clients pick the pool per request (the coordinator group's TOB
  // nodes); target rotation on retry stays within the pool.
  const std::vector<NodeId>& pool =
      options_.router != nullptr ? options_.router->route(*in_flight_) : options_.targets;
  const NodeId target = pool[target_idx_ % pool.size()];
  if (options_.mode == Mode::kDirect) {
    ctx.send(target, workload::make_request_msg(*in_flight_));
  } else {
    ClientId wire_id = id_;
    if (options_.router != nullptr && options_.router->cross_shard(*in_flight_)) {
      // Mark the broadcast itself: the delivery path spots the control bit
      // in the decided batch and takes the serial 2PC path without decoding.
      wire_id = ClientId{kXsBeginBit | (id_.value & kXsClientMask)};
    }
    tob::BroadcastBody body{
        tob::Command{wire_id, in_flight_->seq, workload::encode_request(*in_flight_)}};
    ctx.send(target, net::make_msg(tob::kBroadcastHeader, std::move(body)));
  }
  timeout_timer_ = ctx.set_timer(options_.retry_timeout,
                                 [this](net::NodeContext& c) { on_timeout(c); });
}

void DbClient::on_timeout(net::NodeContext& ctx) {
  if (!in_flight_ || done_) return;
  ++retries_;
  ++target_idx_;  // rotate: the old target may have crashed
  if (ro_.has_value()) {
    // Abandon the whole RO attempt: fresh classification, fresh snaps, next
    // replica in every group that failed to answer (the responsive ones
    // keep their replica). A crashed replica mid-fanout is indistinguishable
    // from a lost answer, and re-snapping is cheap.
    if (ro_->awaiting.empty()) {
      for (const GroupId g : ro_->participants) ++ro_rot_[g];
    } else {
      for (const GroupId g : ro_->awaiting) ++ro_rot_[g];
    }
    ro_.reset();
    ++ro_restarts_;
  }
  send_current(ctx);
}

void DbClient::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == workload::kTxnResponseHeader) {
    const auto& resp = net::msg_body<workload::TxnResponse>(msg);
    if (!in_flight_ || resp.seq != in_flight_->seq) return;  // late duplicate
    finish_current(ctx, resp);
    return;
  }
  if (msg.header == kRoSnapRespHeader) {
    on_ro_snap_resp(ctx, net::msg_body<RoSnapRespBody>(msg));
    return;
  }
  if (msg.header == kRoReadRespHeader) {
    on_ro_read_resp(ctx, net::msg_body<RoReadRespBody>(msg));
    return;
  }
  if (msg.header == kPbrRedirectHeader) {
    if (!in_flight_) return;
    const auto& body = net::msg_body<RedirectBody>(msg);
    ctx.cancel_timer(timeout_timer_);
    const bool unknown_primary = body.primary.value == UINT32_MAX;
    if (!body.busy && !unknown_primary) {
      // Point directly at the new primary and resend immediately.
      for (std::size_t i = 0; i < options_.targets.size(); ++i) {
        if (options_.targets[i] == body.primary) target_idx_ = i;
      }
      if (options_.targets[target_idx_ % options_.targets.size()] != body.primary) {
        options_.targets.push_back(body.primary);
        target_idx_ = options_.targets.size() - 1;
      }
      consecutive_busy_ = 0;
      ++retries_;
      send_current(ctx);
    } else {
      // Recovery in progress (or the primary is not known yet): back off,
      // then retry the same request. A node that stays "busy" for long may
      // itself be out of the configuration — rotate away from it.
      if (++consecutive_busy_ >= 8) {
        consecutive_busy_ = 0;
        ++target_idx_;
      }
      ctx.set_timer(options_.busy_backoff, [this](net::NodeContext& c) {
        if (in_flight_ && !done_) {
          ++retries_;
          send_current(c);
        }
      });
    }
    return;
  }
  // tob-ack and other service chatter is not the transaction answer.
}

void DbClient::finish_current(net::NodeContext& ctx, const workload::TxnResponse& resp) {
  consecutive_busy_ = 0;
  ctx.cancel_timer(timeout_timer_);
  ctx.charge(options_.client_cpu_us);
  const bool transient_abort = resp.error == "xs-lock-conflict" ||
                               resp.error == "range-frozen" ||
                               resp.error == "xs-epoch-retry";
  if (!resp.committed && options_.retry_conflict_aborts && transient_abort) {
    // A no-wait 2PC vote-NO (lock race), a key range frozen mid-migration,
    // or a routing-epoch mismatch: the transaction lost a race, not a
    // semantic check. Resubmit it as a fresh transaction (new seq — the old
    // one is terminally aborted in every replica's dedup table). The seq
    // bump happens NOW so the duplicate abort answers from the other
    // coordinator replicas keep being filtered as late duplicates; the
    // resend itself waits out a jittered backoff so it does not re-collide
    // with the winner that still holds the contended locks.
    if (options_.tracer) options_.tracer->txn_ack(ctx.now(), self_, id_, resp.seq, false);
    ++conflict_retries_;
    in_flight_->seq = ++seq_;
    net::Time delay = 0;
    if (options_.conflict_backoff_us > 0) {
      const std::uint32_t streak = conflict_streak_ < 6 ? conflict_streak_ : 6;
      backoff_state_ = backoff_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const net::Time span = options_.conflict_backoff_us << streak;
      delay = options_.conflict_backoff_us + (backoff_state_ >> 33) % span;
    }
    ++conflict_streak_;
    ctx.set_timer(delay, [this](net::NodeContext& c) {
      if (!in_flight_ || done_) return;
      sent_at_ = c.now();
      if (options_.tracer) {
        options_.tracer->txn_begin(c.now(), self_, id_, in_flight_->seq, in_flight_->proc);
      }
      send_current(c);
    });
    return;
  }
  conflict_streak_ = 0;
  latencies_.add(ctx.now() - sent_at_);
  if (options_.tracer) {
    options_.tracer->txn_ack(ctx.now(), self_, id_, resp.seq, resp.committed);
  }
  if (response_hook_) response_hook_(resp);
  if (resp.committed) {
    ++committed_;
    // Read-your-writes: remember where this commit became visible. The
    // coordinator group's position alone is sound — a later snapshot read
    // covering it re-snaps any participant whose cut would exclude it
    // (torn-cut detection in resolve_ro_cut).
    if (resp.commit_pos > 0) {
      std::uint64_t& floor = ro_floors_[resp.commit_group];
      floor = std::max(floor, resp.commit_pos);
    }
    if (commit_hook_) commit_hook_(ctx.now());
  } else {
    ++aborted_;
  }
  in_flight_.reset();
  submit_next(ctx);
}

// -- read-only snapshot path ---------------------------------------------------

bool DbClient::ro_eligible(const workload::TxnRequest& req) const {
  return options_.mode == Mode::kTob && options_.router != nullptr &&
         options_.router->shard_count() > 1 && options_.router->read_only(req);
}

NodeId DbClient::ro_replica_of(GroupId g) const {
  const std::vector<NodeId>& replicas = options_.router->replica_targets(g);
  SHADOW_CHECK(!replicas.empty());
  const auto it = ro_rot_.find(g);
  const std::size_t rot = it == ro_rot_.end() ? 0 : it->second;
  // id_ + g spreads fresh clients across replicas; rotation is per group.
  return replicas[(rot + id_.value + g) % replicas.size()];
}

void DbClient::send_ro_snap(net::NodeContext& ctx, GroupId g) {
  ctx.charge(options_.client_cpu_us);
  RoSnapBody body;
  body.client = kRoBeginBit | (id_.value & kXsClientMask);
  body.seq = in_flight_->seq;
  body.group = g;
  ctx.send(ro_replica_of(g), net::make_msg(kRoSnapHeader, body));
}

void DbClient::send_ro_read(net::NodeContext& ctx, GroupId g, std::uint64_t version,
                            std::uint64_t floor) {
  ctx.charge(options_.client_cpu_us);
  RoReadBody body;
  body.req = *in_flight_;
  body.req.client = ClientId{kRoBeginBit | (id_.value & kXsClientMask)};
  body.version = version;
  body.floor = floor;
  body.group = g;
  ctx.send(ro_replica_of(g), net::make_msg(kRoReadHeader, std::move(body)));
}

void DbClient::start_ro_attempt(net::NodeContext& ctx) {
  ro_.emplace();
  ro_->participants = options_.router->ro_shards_of(*in_flight_);
  ro_->cross = ro_->participants.size() > 1;
  if (ro_->cross) {
    // Phase 0: collect each participant group's snapshot coordinates.
    for (const GroupId g : ro_->participants) {
      ro_->awaiting.insert(g);
      send_ro_snap(ctx, g);
    }
  } else {
    // Single-shard: one read at the replica's current version, floored by
    // the session's read-your-writes position for that group.
    const GroupId g = ro_->participants.front();
    ro_->phase = 1;
    ro_->cut[g] = 0;
    ro_->awaiting.insert(g);
    send_ro_read(ctx, g, 0, ro_floors_[g]);
  }
  timeout_timer_ = ctx.set_timer(options_.retry_timeout,
                                 [this](net::NodeContext& c) { on_timeout(c); });
}

void DbClient::restart_ro_attempt(net::NodeContext& ctx) {
  ctx.cancel_timer(timeout_timer_);
  // Awaiting is empty when the restart comes from resolve_ro_cut (every
  // snap answered, the cut still would not close) — rotate ALL participants
  // then, since any of the answering replicas may be the wedged one.
  if (ro_->awaiting.empty()) {
    for (const GroupId g : ro_->participants) ++ro_rot_[g];
  } else {
    for (const GroupId g : ro_->awaiting) ++ro_rot_[g];
  }
  ro_.reset();
  ++ro_restarts_;
  ctx.set_timer(options_.busy_backoff, [this](net::NodeContext& c) {
    if (in_flight_ && !done_) send_current(c);
  });
}

void DbClient::on_ro_snap_resp(net::NodeContext& ctx, const RoSnapRespBody& body) {
  if (!ro_ || !in_flight_ || body.seq != in_flight_->seq) return;
  if (ro_->phase != 0 || ro_->awaiting.count(body.group) == 0) return;
  if (body.serving == 0) {
    // (Re)joining replica: ask the next one in the group's rotation.
    ++ro_rot_[body.group];
    send_ro_snap(ctx, body.group);
    return;
  }
  ro_->awaiting.erase(body.group);
  ro_->snaps[body.group] = body;
  if (ro_->awaiting.empty()) resolve_ro_cut(ctx);
}

void DbClient::resolve_ro_cut(net::NodeContext& ctx) {
  // A committed cross-shard transaction visible at group g (decide_pos <=
  // S_g) must be visible at every other participant of the cut. At h the
  // snap shows one of four states, in h's log order: absent entirely (the
  // prepare has not reached h — a stalled or failed-over log), prepared-
  // undecided, decided in the ring, or decided so long ago the bounded ring
  // evicted it (h's per-client high-water covers the seq). Only the last
  // two with decide_pos <= S_h are included; everything else tears the cut
  // and forces a re-snap of h.
  std::set<GroupId> resnap;
  for (const auto& [g, snap] : ro_->snaps) {
    // Read-your-writes: the cut must cover the session floor.
    std::uint64_t& floor = ro_floors_[g];
    if (snap.position < floor) {
      resnap.insert(g);
      continue;
    }
    for (const RoSnapRespBody::Decide& d : snap.decides) {
      if (d.committed == 0 || d.decide_pos > snap.position) continue;
      for (const std::uint32_t h : d.participants) {
        if (h == g) continue;
        const auto it = ro_->snaps.find(h);
        if (it == ro_->snaps.end() || resnap.count(h) != 0) continue;
        const RoSnapRespBody& sh = it->second;
        // Ring-evicted decides were applied before every ring entry.
        bool included = false;
        for (const auto& [lc, ls] : sh.last_decided) {
          if (lc == d.client && ls >= d.seq) included = true;
        }
        for (const RoSnapRespBody::Decide& e : sh.decides) {
          if (e.client == d.client && e.seq == d.seq) {
            included = e.decide_pos <= sh.position;
          }
        }
        // Prepared-undecided overrides the high-water: a LATER txn of the
        // same client may have decided at h while this one's decide is
        // still in flight.
        for (const auto& [pc, ps] : sh.prepared) {
          if (pc == d.client && ps == d.seq) included = false;
        }
        if (!included) resnap.insert(h);
      }
    }
  }
  if (!resnap.empty()) {
    if (++ro_->rounds > 8) {
      restart_ro_attempt(ctx);
      return;
    }
    for (const GroupId g : resnap) {
      // Rotate the group's replica each round: a re-snap usually just needs
      // the SAME replica to finish replaying the missing decides, but a
      // replica whose ordered feed died keeps serving snaps at a frozen
      // position forever — it still reports serving=1, so only rotation can
      // escape it, and any caught-up replica serves the fresh snap equally.
      ++ro_rot_[g];
      ro_->snaps.erase(g);
      ro_->awaiting.insert(g);
      send_ro_snap(ctx, g);
    }
    return;
  }
  ro_->phase = 1;
  for (const GroupId g : ro_->participants) {
    ro_->cut[g] = ro_->snaps[g].position;
    ro_->awaiting.insert(g);
  }
  for (const GroupId g : ro_->participants) send_ro_read(ctx, g, ro_->cut[g], 0);
}

void DbClient::on_ro_read_resp(net::NodeContext& ctx, const RoReadRespBody& body) {
  if (!ro_ || !in_flight_ || body.seq != in_flight_->seq) return;
  if (ro_->phase != 1 || ro_->awaiting.count(body.group) == 0) return;
  if (body.ok == 0) {
    if (body.error == "ro-lagging" || body.error == "ro-joining") {
      // Replica-local condition: rotate within the group and re-send the
      // same pinned read.
      ++ro_rot_[body.group];
      const std::uint64_t version = ro_->cut[body.group];
      const std::uint64_t floor = ro_->cross ? 0 : ro_floors_[body.group];
      send_ro_read(ctx, body.group, version, floor);
      return;
    }
    // ro-stale (GC outran the cut), ro-moved, ro-split: the cut itself is
    // unusable — restart the attempt from classification.
    restart_ro_attempt(ctx);
    return;
  }
  // A pinned read must come back at the pinned version; an answer from an
  // abandoned attempt (same seq, older cut) must not tear this one. A
  // forwarded read legitimately reports the owner's version.
  if (ro_->cut[body.group] != 0 && body.served_group == body.group &&
      body.version != ro_->cut[body.group]) {
    return;
  }
  ro_->awaiting.erase(body.group);
  ro_->rows[body.group] = body.rows;
  // Single-shard reads learn their version from the answer; cross-shard cuts
  // keep the pinned snap position (the value torn-cut detection validated)
  // even if a migrated share was forwarded and served elsewhere.
  if (ro_->cut[body.group] == 0) ro_->cut[body.group] = body.version;
  if (ro_->awaiting.empty()) finish_ro(ctx);
}

void DbClient::finish_ro(net::NodeContext& ctx) {
  // Monotonic reads: later snapshot reads of these groups must not observe
  // an earlier cut.
  for (const auto& [g, v] : ro_->cut) {
    std::uint64_t& floor = ro_floors_[g];
    floor = std::max(floor, v);
  }
  if (options_.tracer) {
    for (const auto& [g, v] : ro_->cut) {
      options_.tracer->ro_cut(ctx.now(), self_, id_, in_flight_->seq, g, v,
                              ro_->cut.size());
    }
  }
  workload::TxnResponse resp;
  resp.client = id_;
  resp.seq = in_flight_->seq;
  resp.committed = true;
  for (const GroupId g : ro_->participants) {
    for (db::Row& row : ro_->rows[g]) resp.rows.push_back(std::move(row));
  }
  ++ro_committed_;
  ro_.reset();
  finish_current(ctx, resp);
}

}  // namespace shadow::core
