#include "core/replica_common.hpp"

namespace shadow::core {

TxnExecutor::TxnExecutor(std::shared_ptr<db::Engine> engine,
                         std::shared_ptr<const workload::ProcedureRegistry> registry,
                         ServerCosts costs)
    : engine_(std::move(engine)), registry_(std::move(registry)), costs_(costs) {
  SHADOW_REQUIRE(engine_ != nullptr && registry_ != nullptr);
}

TxnExecutor::Execution TxnExecutor::execute(const workload::TxnRequest& req) {
  Execution exec;
  auto it = last_by_client_.find(req.client.value);
  if (it != last_by_client_.end() && req.seq <= it->second.first) {
    // Duplicate (client retry): a no-op that replays the recorded answer.
    exec.duplicate = true;
    exec.response = it->second.second;
    exec.response.seq = req.seq;
    exec.cost_us = costs_.per_txn_us / 4;
    return exec;
  }

  const workload::TxnOutcome outcome =
      workload::run_procedure(*engine_, registry_->get(req.proc), req.params);
  ++executed_;

  exec.response.client = req.client;
  exec.response.seq = req.seq;
  exec.response.committed = outcome.committed;
  exec.response.rows = outcome.rows;
  exec.response.error = outcome.error;
  exec.cost_us = costs_.per_txn_us + outcome.cost_us + costs_.per_stmt_us * outcome.statements;
  last_by_client_[req.client.value] = {req.seq, exec.response};
  return exec;
}

TxnExecutor::Execution TxnExecutor::apply_prepared(const workload::TxnRequest& req,
                                                   const std::vector<db::Statement>& staged,
                                                   bool commit, std::string error) {
  Execution exec;
  std::uint64_t engine_cost = 0;
  if (commit) {
    const db::TxnId txn = engine_->begin();
    for (const db::Statement& stmt : staged) {
      const db::ExecResult r = engine_->execute(txn, stmt);
      SHADOW_CHECK_MSG(r.ok(), "prepared cross-shard statement must apply cleanly");
      engine_cost += r.cost_us;
    }
    const db::ExecResult c = engine_->commit(txn);
    SHADOW_CHECK(c.ok());
    engine_cost += c.cost_us;
  }
  ++executed_;
  exec.response.client = req.client;
  exec.response.seq = req.seq;
  exec.response.committed = commit;
  exec.response.error = std::move(error);
  exec.cost_us = costs_.per_txn_us + engine_cost + costs_.per_stmt_us * staged.size();
  last_by_client_[req.client.value] = {req.seq, exec.response};
  return exec;
}

}  // namespace shadow::core
