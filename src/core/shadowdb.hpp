// ShadowDB cluster assembly.
//
// Wires up the full deployment of Sec. IV: three server machines, each
// hosting one broadcast-service node and one database replica process
// (co-located, sharing the machine's CPU); a configurable replica group
// (default two databases, f = 1, third machine's database as spare); and
// engine diversity (H2-like, HSQLDB-like, Derby-like by default — benchmarks
// that compare against H2 deploy H2 everywhere, as the paper does "to make
// the comparison fair").
#pragma once

#include <memory>

#include "core/chain.hpp"
#include "core/client.hpp"
#include "core/pbr.hpp"
#include "core/smr.hpp"

namespace shadow::core {

struct ClusterOptions {
  std::size_t machines = 3;        // broadcast service size (Paxos: f = 1)
  std::size_t db_replicas = 2;     // active database group size
  std::size_t db_spares = 1;       // passive replacements
  tob::Protocol protocol = tob::Protocol::kPaxos;
  gpm::ExecutionTier tob_tier = gpm::ExecutionTier::kCompiled;
  std::size_t tob_batch_max = 64;
  // Multi-decree pipelining (PMMC's WINDOW): proposals in flight per node.
  // 1 maximizes batching, which wins when consensus work dominates.
  std::size_t tob_max_outstanding = 1;
  /// Load-adaptive proposal sizing (see TobConfig::adaptive_batching). When
  /// `smr.pipelined_execution` is also on, each TOB node's backlog probe is
  /// wired to its co-located replica's executor-pipeline queue depth.
  bool tob_adaptive_batching = false;
  std::size_t tob_batch_min = 1;

  /// Engine flavour per replica index (cycled). Empty → the paper's diverse
  /// default [H2, HSQLDB, Derby].
  std::vector<db::EngineTraits> engines;

  /// Populates each replica's database identically before the run.
  std::function<void(db::Engine&)> loader;

  std::shared_ptr<const workload::ProcedureRegistry> registry;
  ServerCosts server_costs{};
  PbrConfig pbr{};
  SmrConfig smr{};

  /// Optional structured trace recorder; propagated into the TOB service,
  /// its consensus module, and every replica (unless their sub-configs
  /// already carry one). Attach it to the World separately for network and
  /// crash events: `tracer.attach(world)`.
  obs::Tracer* tracer = nullptr;
};

db::EngineTraits engine_for_replica(const ClusterOptions& options, std::size_t index);

/// A deployed ShadowDB-SMR cluster.
struct SmrCluster {
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<SmrReplica>> replicas;  // actives then spares
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  /// Submission targets for kTob clients.
  const std::vector<NodeId>& broadcast_targets() const { return tob_nodes; }
};

SmrCluster make_smr_cluster(net::Transport& world, const ClusterOptions& options);

/// A deployed ShadowDB-PBR cluster.
struct PbrCluster {
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<PbrReplica>> replicas;  // group order, then spares
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  NodeId initial_primary() const { return replica_nodes.front(); }
  /// Submission targets for kDirect clients (primary first; clients rotate
  /// and follow redirects after failures).
  const std::vector<NodeId>& request_targets() const { return replica_nodes; }
};

PbrCluster make_pbr_cluster(net::Transport& world, const ClusterOptions& options);

/// A deployed chain-replication cluster (extension; see core/chain.hpp).
struct ChainCluster {
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<ChainReplica>> replicas;  // chain order, then spares
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  NodeId head() const { return replica_nodes.front(); }
  const std::vector<NodeId>& request_targets() const { return replica_nodes; }
};

ChainCluster make_chain_cluster(net::Transport& world, const ClusterOptions& options,
                                ChainConfig chain_config = {});

}  // namespace shadow::core
