// ShadowDB cluster assembly.
//
// Wires up the full deployment of Sec. IV: three server machines, each
// hosting one broadcast-service node and one database replica process
// (co-located, sharing the machine's CPU); a configurable replica group
// (default two databases, f = 1, third machine's database as spare); and
// engine diversity (H2-like, HSQLDB-like, Derby-like by default — benchmarks
// that compare against H2 deploy H2 everywhere, as the paper does "to make
// the comparison fair").
#pragma once

#include <memory>

#include "core/chain.hpp"
#include "core/client.hpp"
#include "core/group.hpp"
#include "core/pbr.hpp"
#include "core/smr.hpp"

namespace shadow::core {

/// A deployed ShadowDB-SMR cluster: exactly one replication group (the
/// ClusterOptions/GroupOptions split lives in core/group.hpp, where sharded
/// deployments assemble N of these over a shared machine set).
struct SmrCluster : ReplicationGroup {};

SmrCluster make_smr_cluster(net::Transport& world, const ClusterOptions& options);

/// A deployed ShadowDB-PBR cluster.
struct PbrCluster {
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<PbrReplica>> replicas;  // group order, then spares
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  NodeId initial_primary() const { return replica_nodes.front(); }
  /// Submission targets for kDirect clients (primary first; clients rotate
  /// and follow redirects after failures).
  const std::vector<NodeId>& request_targets() const { return replica_nodes; }
};

PbrCluster make_pbr_cluster(net::Transport& world, const ClusterOptions& options);

/// A deployed chain-replication cluster (extension; see core/chain.hpp).
struct ChainCluster {
  std::vector<net::HostId> machines;
  tob::TobService tob;
  std::vector<std::unique_ptr<ChainReplica>> replicas;  // chain order, then spares
  std::vector<NodeId> tob_nodes;
  std::vector<NodeId> replica_nodes;
  std::shared_ptr<consensus::SafetyRecorder> safety;

  NodeId head() const { return replica_nodes.front(); }
  const std::vector<NodeId>& request_targets() const { return replica_nodes; }
};

ChainCluster make_chain_cluster(net::Transport& world, const ClusterOptions& options,
                                ChainConfig chain_config = {});

}  // namespace shadow::core
