#include "core/group.hpp"

#include "core/codecs.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

db::EngineTraits engine_for_replica(const ClusterOptions& options, std::size_t index) {
  if (!options.engines.empty()) return options.engines[index % options.engines.size()];
  // The paper's diversity deployment: H2 primary, HSQLDB backup, Derby spare.
  switch (index % 3) {
    case 0: return db::make_h2_traits();
    case 1: return db::make_hsqldb_traits();
    default: return db::make_derby_traits();
  }
}

namespace detail {

tob::TobConfig make_group_tob_config(net::Transport& world, const ClusterOptions& options,
                                     const GroupOptions& group,
                                     std::vector<net::HostId>& machines,
                                     std::vector<NodeId>& tob_nodes) {
  tob::TobConfig config;
  config.protocol = options.protocol;
  config.profile.tier = options.tob_tier;
  config.batch_max = options.tob_batch_max;
  config.max_outstanding = options.tob_max_outstanding;
  config.adaptive_batching = options.tob_adaptive_batching;
  config.batch_min = options.tob_batch_min;
  config.tracer = options.tracer;
  config.paxos.tracer = options.tracer;
  config.two_third.tracer = options.tracer;
  config.metric_scope = group.metric_scope;
  // TwoThird needs n > 3f; Paxos needs a majority: both satisfied by the
  // requested machine count (callers pick 3 for Paxos, 4 for TwoThird).
  for (std::size_t i = 0; i < options.machines; ++i) {
    if (machines.size() <= i) machines.push_back(world.add_host());
    tob_nodes.push_back(
        world.add_node(group.name_prefix + "tob" + std::to_string(i), machines[i]));
  }
  config.nodes = tob_nodes;
  return config;
}

std::shared_ptr<db::Engine> make_loaded_engine(const ClusterOptions& options,
                                               std::size_t index) {
  auto engine = std::make_shared<db::Engine>(engine_for_replica(options, index));
  if (options.loader) options.loader(*engine);
  return engine;
}

}  // namespace detail

ReplicationGroup make_replication_group(net::Transport& world, const ClusterOptions& options,
                                        const GroupOptions& group) {
  SHADOW_REQUIRE(options.registry != nullptr);
  // A TCP cluster process must decode message types it never builds.
  register_wire_codecs();
  SHADOW_REQUIRE(options.db_replicas + options.db_spares <= options.machines);
  ReplicationGroup rg;
  rg.id = group.id;
  rg.machines = group.machines;
  rg.safety = std::make_shared<consensus::SafetyRecorder>();
  const tob::TobConfig tob_config =
      detail::make_group_tob_config(world, options, group, rg.machines, rg.tob_nodes);
  rg.tob = tob::make_service(world, tob_config, rg.safety.get());

  const std::size_t total = options.db_replicas + options.db_spares;
  std::vector<NodeId> actives;
  std::vector<NodeId> spares;
  for (std::size_t i = 0; i < total; ++i) {
    rg.replica_nodes.push_back(
        world.add_node(group.name_prefix + "db" + std::to_string(i), rg.machines[i]));
    (i < options.db_replicas ? actives : spares).push_back(rg.replica_nodes.back());
  }
  SmrConfig smr_config = options.smr;
  if (smr_config.tracer == nullptr) smr_config.tracer = options.tracer;
  if (group.router != nullptr) {
    smr_config.router = group.router;
    smr_config.group = group.id;
    smr_config.metric_scope = group.metric_scope;
  }
  for (std::size_t i = 0; i < total; ++i) {
    auto replica = std::make_unique<SmrReplica>(
        world, rg.replica_nodes[i], *rg.tob.nodes[i], detail::make_loaded_engine(options, i),
        options.registry, actives, spares, smr_config, options.server_costs);
    if (i >= options.db_replicas) replica->make_spare();
    rg.replicas.push_back(std::move(replica));
  }
  if (smr_config.pipelined_execution) {
    // Adaptive batching senses downstream congestion through the co-located
    // replica's executor pipeline: a deep queue means the DB stage is the
    // bottleneck and bigger batches amortize consensus better.
    for (std::size_t i = 0; i < total; ++i) {
      if (!world.is_local(rg.replica_nodes[i])) continue;
      SmrReplica* replica = rg.replicas[i].get();
      rg.tob.nodes[i]->set_backlog_probe([replica] { return replica->pipeline_depth(); });
    }
  }
  if (group.router != nullptr && smr_config.tracer != nullptr) {
    // Sharded deployments stamp every node with its group (and restart
    // epoch) so the offline checker can split merged traces per group;
    // classic clusters emit nothing and every node defaults to group 0.
    for (NodeId n : rg.tob_nodes) {
      smr_config.tracer->group_info(world.now(), n, group.id, group.epoch);
    }
    for (NodeId n : rg.replica_nodes) {
      smr_config.tracer->group_info(world.now(), n, group.id, group.epoch);
    }
  }
  return rg;
}

ShardedSmrCluster make_sharded_smr_cluster(net::Transport& world, const ClusterOptions& options,
                                           std::size_t shards, std::uint64_t epoch) {
  SHADOW_REQUIRE(shards >= 1);
  ShardedSmrCluster cluster;
  cluster.router = std::make_unique<ShardRouter>(shards);
  cluster.router->install_default_extractors();
  cluster.router->set_tracer(options.tracer);
  // One shared machine set: machine i hosts tob<i> + db<i> of EVERY group,
  // mirroring the paper's service/database co-location per group.
  for (std::size_t i = 0; i < options.machines; ++i) {
    cluster.machines.push_back(world.add_host());
  }
  for (std::size_t g = 0; g < shards; ++g) {
    GroupOptions go;
    go.id = static_cast<GroupId>(g);
    if (shards > 1) {
      go.name_prefix = "g" + std::to_string(g) + ".";
      go.metric_scope = "group." + std::to_string(g) + ".";
    }
    go.machines = cluster.machines;
    go.router = cluster.router.get();
    go.epoch = epoch;
    cluster.groups.push_back(make_replication_group(world, options, go));
  }
  for (std::size_t g = 0; g < shards; ++g) {
    cluster.router->set_group_targets(static_cast<GroupId>(g), cluster.groups[g].tob_nodes,
                                      cluster.groups[g].replica_nodes);
  }
  return cluster;
}

}  // namespace shadow::core
