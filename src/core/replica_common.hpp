// Machinery shared by both ShadowDB replication protocols: transaction
// execution against the local engine, at-most-once bookkeeping, the
// server-side cost model, and the replication message bodies that PBR,
// chain replication and SMR state transfer all exchange (same shapes under
// protocol-specific headers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "db/engine.hpp"
#include "db/wire.hpp"
#include "workload/messages.hpp"
#include "workload/procedures.hpp"

namespace shadow::core {

// -- replication message bodies ----------------------------------------------
//
// PBR and chain replication exchange structurally identical messages under
// distinct headers ("pbr-fwd" vs "chain-fwd"); SMR's snapshot state transfer
// shares the snapshot bodies (with config = 0, order/rows as applicable).
// One definition each, one wire codec each.

/// Primary → backup (or chain successor): execute this transaction.
struct ReplForwardBody {
  ConfigSeq config = 0;
  std::uint64_t order = 0;
  workload::TxnRequest request;
};

/// Backup → primary: transaction at `order` executed.
struct ReplAckBody {
  ConfigSeq config = 0;
  std::uint64_t order = 0;
};

/// Election round: (configuration, highest executed order).
struct ReplElectBody {
  ConfigSeq config = 0;
  std::uint64_t executed = 0;
};

/// Catch-up from the bounded executed-transaction cache.
struct ReplCatchupBody {
  ConfigSeq config = 0;
  std::vector<std::pair<std::uint64_t, workload::TxnRequest>> txns;
};

/// Snapshot stream prologue: schemas + dedup table + represented order.
struct ReplSnapBeginBody {
  ConfigSeq config = 0;
  std::vector<db::TableSchema> schemas;
  std::vector<std::pair<std::uint32_t, RequestSeq>> dedup_seqs;
  std::uint64_t order = 0;  // executed-order the snapshot represents
};

/// One ~50 KB chunk of serialized rows.
struct ReplSnapBatchBody {
  db::Engine::SnapshotBatch batch;
};

/// Snapshot stream epilogue / recovery acknowledgement. For SMR
/// crash-restart rejoin it additionally carries the TOB resume point: the
/// first slot the joiner must deliver itself, the global delivery index of
/// that slot, and the exact keys of control commands (reconfig/rejoin) the
/// snapshot covers — control clients use fresh ids per incarnation, so the
/// per-client dedup floor cannot cover them. Zeroed fields (PBR, chain,
/// plain spare promotion) mean "no TOB resume".
struct ReplSnapDoneBody {
  ReplSnapDoneBody() = default;
  explicit ReplSnapDoneBody(ConfigSeq c, std::uint64_t r = 0) : config(c), rows(r) {}

  ConfigSeq config = 0;
  std::uint64_t rows = 0;  // total rows restored (SMR reports it back)
  std::uint64_t resume_slot = 0;
  std::uint64_t resume_index = 0;  // delivery index of resume_slot's first command
  std::vector<std::pair<std::uint32_t, std::uint64_t>> control_keys;
};

/// Loopback handoff of a TOB delivery into the replica's own identity.
struct DeliverHandoff {
  Slot slot = 0;
  std::uint64_t index = 0;
  consensus::Command command;
};

/// Loopback handoff of one whole decided slot. The batch travels as the
/// decided `EncodedBatch` — spliced, never re-encoded — so a pipelined
/// replica can move it onto its executor thread with zero payload copies
/// (the i-th command has global delivery index `base_index + i`).
struct DeliverBatchHandoff {
  Slot slot = 0;
  std::uint64_t base_index = 0;
  consensus::EncodedBatch batch;
};

/// Server-side virtual CPU costs beyond the engine's own (request decode,
/// dispatch, reply marshalling). Replicas execute transactions in-process
/// ("in the same JVM as the database"), so per-statement dispatch is cheap.
struct ServerCosts {
  std::uint64_t per_txn_us = 80;
  // In-process JDBC still pays per-statement dispatch (prepared-statement
  // lookup, parameter binding, result marshalling).
  std::uint64_t per_stmt_us = 14;
};

/// Executes transactions exactly once. "Each replica has to keep track of
/// which transactions have been performed already, treating duplicates as
/// no-ops... by recording the sequence number of the last transaction
/// submitted by each client."
class TxnExecutor {
 public:
  TxnExecutor(std::shared_ptr<db::Engine> engine,
              std::shared_ptr<const workload::ProcedureRegistry> registry,
              ServerCosts costs = {});

  /// Executes (or deduplicates) the request. Returns the response and the
  /// virtual CPU cost the caller must charge.
  struct Execution {
    workload::TxnResponse response;
    std::uint64_t cost_us = 0;
    bool duplicate = false;
  };
  Execution execute(const workload::TxnRequest& req);

  /// Applies a cross-shard transaction's decision (core/twopc.hpp): runs the
  /// staged statements in one engine transaction (commit) or nothing (abort),
  /// records the outcome in the dedup table either way, and prices it like a
  /// normal execution. The statements were planned under exclusive locks, so
  /// they must apply cleanly.
  Execution apply_prepared(const workload::TxnRequest& req,
                           const std::vector<db::Statement>& staged, bool commit,
                           std::string error);

  /// Number of distinct transactions executed (not deduplicated).
  std::uint64_t executed_count() const { return executed_; }

  db::Engine& engine() { return *engine_; }
  const db::Engine& engine() const { return *engine_; }
  std::shared_ptr<db::Engine> engine_ptr() const { return engine_; }

  /// The dedup table travels with state transfer so a restored replica
  /// keeps treating old duplicates as no-ops.
  const std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>>&
  dedup_table() const {
    return last_by_client_;
  }
  void install_dedup_table(
      std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> table) {
    last_by_client_ = std::move(table);
  }

 private:
  std::shared_ptr<db::Engine> engine_;
  std::shared_ptr<const workload::ProcedureRegistry> registry_;
  ServerCosts costs_;
  std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> last_by_client_;
  std::uint64_t executed_ = 0;
};

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::ReplForwardBody> {
  static void encode(BytesWriter& w, const core::ReplForwardBody& v) {
    w.u64(v.config);
    w.u64(v.order);
    Codec<workload::TxnRequest>::encode(w, v.request);
  }
  static core::ReplForwardBody decode(BytesReader& r) {
    core::ReplForwardBody v;
    v.config = r.u64();
    v.order = r.u64();
    v.request = Codec<workload::TxnRequest>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::ReplAckBody> {
  static void encode(BytesWriter& w, const core::ReplAckBody& v) {
    w.u64(v.config);
    w.u64(v.order);
  }
  static core::ReplAckBody decode(BytesReader& r) {
    core::ReplAckBody v;
    v.config = r.u64();
    v.order = r.u64();
    return v;
  }
};

template <>
struct Codec<core::ReplElectBody> {
  static void encode(BytesWriter& w, const core::ReplElectBody& v) {
    w.u64(v.config);
    w.u64(v.executed);
  }
  static core::ReplElectBody decode(BytesReader& r) {
    core::ReplElectBody v;
    v.config = r.u64();
    v.executed = r.u64();
    return v;
  }
};

template <>
struct Codec<core::ReplCatchupBody> {
  static void encode(BytesWriter& w, const core::ReplCatchupBody& v) {
    w.u64(v.config);
    Codec<std::vector<std::pair<std::uint64_t, workload::TxnRequest>>>::encode(w, v.txns);
  }
  static core::ReplCatchupBody decode(BytesReader& r) {
    core::ReplCatchupBody v;
    v.config = r.u64();
    v.txns = Codec<std::vector<std::pair<std::uint64_t, workload::TxnRequest>>>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::ReplSnapBeginBody> {
  static void encode(BytesWriter& w, const core::ReplSnapBeginBody& v) {
    w.u64(v.config);
    Codec<std::vector<db::TableSchema>>::encode(w, v.schemas);
    Codec<std::vector<std::pair<std::uint32_t, RequestSeq>>>::encode(w, v.dedup_seqs);
    w.u64(v.order);
  }
  static core::ReplSnapBeginBody decode(BytesReader& r) {
    core::ReplSnapBeginBody v;
    v.config = r.u64();
    v.schemas = Codec<std::vector<db::TableSchema>>::decode(r);
    v.dedup_seqs = Codec<std::vector<std::pair<std::uint32_t, RequestSeq>>>::decode(r);
    v.order = r.u64();
    return v;
  }
};

template <>
struct Codec<core::ReplSnapBatchBody> {
  static void encode(BytesWriter& w, const core::ReplSnapBatchBody& v) {
    Codec<db::Engine::SnapshotBatch>::encode(w, v.batch);
  }
  static core::ReplSnapBatchBody decode(BytesReader& r) {
    return {Codec<db::Engine::SnapshotBatch>::decode(r)};
  }
};

template <>
struct Codec<core::ReplSnapDoneBody> {
  static void encode(BytesWriter& w, const core::ReplSnapDoneBody& v) {
    w.u64(v.config);
    w.u64(v.rows);
    w.u64(v.resume_slot);
    w.u64(v.resume_index);
    Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::encode(w, v.control_keys);
  }
  static core::ReplSnapDoneBody decode(BytesReader& r) {
    core::ReplSnapDoneBody v;
    v.config = r.u64();
    v.rows = r.u64();
    v.resume_slot = r.u64();
    v.resume_index = r.u64();
    v.control_keys = Codec<std::vector<std::pair<std::uint32_t, std::uint64_t>>>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::DeliverHandoff> {
  static void encode(BytesWriter& w, const core::DeliverHandoff& v) {
    w.u64(v.slot);
    w.u64(v.index);
    Codec<consensus::Command>::encode(w, v.command);
  }
  static core::DeliverHandoff decode(BytesReader& r) {
    core::DeliverHandoff v;
    v.slot = r.u64();
    v.index = r.u64();
    v.command = Codec<consensus::Command>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::DeliverBatchHandoff> {
  static void encode(BytesWriter& w, const core::DeliverBatchHandoff& v) {
    w.u64(v.slot);
    w.u64(v.base_index);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static core::DeliverBatchHandoff decode(BytesReader& r) {
    core::DeliverBatchHandoff v;
    v.slot = r.u64();
    v.base_index = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
