// Machinery shared by both ShadowDB replication protocols: transaction
// execution against the local engine, at-most-once bookkeeping, and the
// server-side cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "db/engine.hpp"
#include "workload/messages.hpp"
#include "workload/procedures.hpp"

namespace shadow::core {

/// Server-side virtual CPU costs beyond the engine's own (request decode,
/// dispatch, reply marshalling). Replicas execute transactions in-process
/// ("in the same JVM as the database"), so per-statement dispatch is cheap.
struct ServerCosts {
  std::uint64_t per_txn_us = 80;
  // In-process JDBC still pays per-statement dispatch (prepared-statement
  // lookup, parameter binding, result marshalling).
  std::uint64_t per_stmt_us = 14;
};

/// Executes transactions exactly once. "Each replica has to keep track of
/// which transactions have been performed already, treating duplicates as
/// no-ops... by recording the sequence number of the last transaction
/// submitted by each client."
class TxnExecutor {
 public:
  TxnExecutor(std::shared_ptr<db::Engine> engine,
              std::shared_ptr<const workload::ProcedureRegistry> registry,
              ServerCosts costs = {});

  /// Executes (or deduplicates) the request. Returns the response and the
  /// virtual CPU cost the caller must charge.
  struct Execution {
    workload::TxnResponse response;
    std::uint64_t cost_us = 0;
    bool duplicate = false;
  };
  Execution execute(const workload::TxnRequest& req);

  /// Number of distinct transactions executed (not deduplicated).
  std::uint64_t executed_count() const { return executed_; }

  db::Engine& engine() { return *engine_; }
  const db::Engine& engine() const { return *engine_; }
  std::shared_ptr<db::Engine> engine_ptr() const { return engine_; }

  /// The dedup table travels with state transfer so a restored replica
  /// keeps treating old duplicates as no-ops.
  const std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>>&
  dedup_table() const {
    return last_by_client_;
  }
  void install_dedup_table(
      std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> table) {
    last_by_client_ = std::move(table);
  }

 private:
  std::shared_ptr<db::Engine> engine_;
  std::shared_ptr<const workload::ProcedureRegistry> registry_;
  ServerCosts costs_;
  std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> last_by_client_;
  std::uint64_t executed_ = 0;
};

}  // namespace shadow::core
