// Machinery shared by both ShadowDB replication protocols: transaction
// execution against the local engine, at-most-once bookkeeping, the
// server-side cost model, and the replication message bodies that PBR,
// chain replication and SMR state transfer all exchange (same shapes under
// protocol-specific headers).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "db/engine.hpp"
#include "db/wire.hpp"
#include "repl/wire.hpp"
#include "workload/messages.hpp"
#include "workload/procedures.hpp"

namespace shadow::core {

// -- replication message bodies ----------------------------------------------
//
// PBR and chain replication exchange structurally identical messages; the
// forwarding step even shares one header ("repl-fwd") since the body already
// carries the configuration that scopes it. The snapshot-stream bodies live
// in repl/wire.hpp (the unified state-transfer codec) and are aliased here;
// SMR state transfer shares them too (config = 0, order/rows as applicable).

/// Primary → backup (or chain successor), and chain node → successor:
/// execute this transaction. One header for both protocols — a node is only
/// ever part of one, and `config` scopes the message to its configuration.
inline constexpr const char* kReplFwdHeader = "repl-fwd";

/// Primary → backup (or chain successor): execute this transaction.
struct ReplForwardBody {
  ConfigSeq config = 0;
  std::uint64_t order = 0;
  workload::TxnRequest request;
};

/// Backup → primary: transaction at `order` executed.
struct ReplAckBody {
  ConfigSeq config = 0;
  std::uint64_t order = 0;
};

/// Election round: (configuration, highest executed order).
struct ReplElectBody {
  ConfigSeq config = 0;
  std::uint64_t executed = 0;
};

/// Catch-up from the bounded executed-transaction cache.
struct ReplCatchupBody {
  ConfigSeq config = 0;
  std::vector<std::pair<std::uint64_t, workload::TxnRequest>> txns;
};

// Snapshot-stream bodies: defined once in repl/wire.hpp, aliased for the
// protocol code that predates the extraction.
using ReplSnapBeginBody = repl::SnapBeginBody;
using ReplSnapBatchBody = repl::SnapBatchBody;
using ReplSnapDoneBody = repl::SnapDoneBody;

/// Loopback handoff of a TOB delivery into the replica's own identity.
struct DeliverHandoff {
  Slot slot = 0;
  std::uint64_t index = 0;
  consensus::Command command;
};

/// Loopback handoff of one whole decided slot. The batch travels as the
/// decided `EncodedBatch` — spliced, never re-encoded — so a pipelined
/// replica can move it onto its executor thread with zero payload copies
/// (the i-th command has global delivery index `base_index + i`).
struct DeliverBatchHandoff {
  Slot slot = 0;
  std::uint64_t base_index = 0;
  consensus::EncodedBatch batch;
};

/// Server-side virtual CPU costs beyond the engine's own (request decode,
/// dispatch, reply marshalling). Replicas execute transactions in-process
/// ("in the same JVM as the database"), so per-statement dispatch is cheap.
struct ServerCosts {
  std::uint64_t per_txn_us = 80;
  // In-process JDBC still pays per-statement dispatch (prepared-statement
  // lookup, parameter binding, result marshalling).
  std::uint64_t per_stmt_us = 14;
};

/// Executes transactions exactly once. "Each replica has to keep track of
/// which transactions have been performed already, treating duplicates as
/// no-ops... by recording the sequence number of the last transaction
/// submitted by each client."
class TxnExecutor {
 public:
  TxnExecutor(std::shared_ptr<db::Engine> engine,
              std::shared_ptr<const workload::ProcedureRegistry> registry,
              ServerCosts costs = {});

  /// Executes (or deduplicates) the request. Returns the response and the
  /// virtual CPU cost the caller must charge.
  struct Execution {
    workload::TxnResponse response;
    std::uint64_t cost_us = 0;
    bool duplicate = false;
  };
  Execution execute(const workload::TxnRequest& req);

  /// Applies a cross-shard transaction's decision (core/twopc.hpp): runs the
  /// staged statements in one engine transaction (commit) or nothing (abort),
  /// records the outcome in the dedup table either way, and prices it like a
  /// normal execution. The statements were planned under exclusive locks, so
  /// they must apply cleanly.
  Execution apply_prepared(const workload::TxnRequest& req,
                           const std::vector<db::Statement>& staged, bool commit,
                           std::string error);

  /// Number of distinct transactions executed (not deduplicated).
  std::uint64_t executed_count() const { return executed_; }

  db::Engine& engine() { return *engine_; }
  const db::Engine& engine() const { return *engine_; }
  std::shared_ptr<db::Engine> engine_ptr() const { return engine_; }

  /// The dedup table travels with state transfer so a restored replica
  /// keeps treating old duplicates as no-ops.
  const std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>>&
  dedup_table() const {
    return last_by_client_;
  }
  void install_dedup_table(
      std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> table) {
    last_by_client_ = std::move(table);
  }

 private:
  std::shared_ptr<db::Engine> engine_;
  std::shared_ptr<const workload::ProcedureRegistry> registry_;
  ServerCosts costs_;
  std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> last_by_client_;
  std::uint64_t executed_ = 0;
};

/// Rebuilds the executor's dedup table from a snapshot prologue. The stored
/// responses are synthesized (committed, empty rows): a client that re-sends
/// a request old enough to be under the snapshot's floor has necessarily seen
/// its real response already.
inline void install_snapshot_dedup(TxnExecutor& executor, const repl::SnapBeginBody& body) {
  std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> dedup;
  for (const auto& [client, seq] : body.dedup_seqs) {
    dedup[client] = {seq, workload::TxnResponse{ClientId{client}, seq, true, {}, ""}};
  }
  executor.install_dedup_table(std::move(dedup));
}

/// Copies the executor's dedup floor into a snapshot prologue.
inline void collect_snapshot_dedup(const TxnExecutor& executor, repl::SnapBeginBody& body) {
  for (const auto& [client, entry] : executor.dedup_table()) {
    body.dedup_seqs.emplace_back(client, entry.first);
  }
}

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::ReplForwardBody> {
  static void encode(BytesWriter& w, const core::ReplForwardBody& v) {
    w.u64(v.config);
    w.u64(v.order);
    Codec<workload::TxnRequest>::encode(w, v.request);
  }
  static core::ReplForwardBody decode(BytesReader& r) {
    core::ReplForwardBody v;
    v.config = r.u64();
    v.order = r.u64();
    v.request = Codec<workload::TxnRequest>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::ReplAckBody> {
  static void encode(BytesWriter& w, const core::ReplAckBody& v) {
    w.u64(v.config);
    w.u64(v.order);
  }
  static core::ReplAckBody decode(BytesReader& r) {
    core::ReplAckBody v;
    v.config = r.u64();
    v.order = r.u64();
    return v;
  }
};

template <>
struct Codec<core::ReplElectBody> {
  static void encode(BytesWriter& w, const core::ReplElectBody& v) {
    w.u64(v.config);
    w.u64(v.executed);
  }
  static core::ReplElectBody decode(BytesReader& r) {
    core::ReplElectBody v;
    v.config = r.u64();
    v.executed = r.u64();
    return v;
  }
};

template <>
struct Codec<core::ReplCatchupBody> {
  static void encode(BytesWriter& w, const core::ReplCatchupBody& v) {
    w.u64(v.config);
    Codec<std::vector<std::pair<std::uint64_t, workload::TxnRequest>>>::encode(w, v.txns);
  }
  static core::ReplCatchupBody decode(BytesReader& r) {
    core::ReplCatchupBody v;
    v.config = r.u64();
    v.txns = Codec<std::vector<std::pair<std::uint64_t, workload::TxnRequest>>>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::DeliverHandoff> {
  static void encode(BytesWriter& w, const core::DeliverHandoff& v) {
    w.u64(v.slot);
    w.u64(v.index);
    Codec<consensus::Command>::encode(w, v.command);
  }
  static core::DeliverHandoff decode(BytesReader& r) {
    core::DeliverHandoff v;
    v.slot = r.u64();
    v.index = r.u64();
    v.command = Codec<consensus::Command>::decode(r);
    return v;
  }
};

template <>
struct Codec<core::DeliverBatchHandoff> {
  static void encode(BytesWriter& w, const core::DeliverBatchHandoff& v) {
    w.u64(v.slot);
    w.u64(v.base_index);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static core::DeliverBatchHandoff decode(BytesReader& r) {
    core::DeliverBatchHandoff v;
    v.slot = r.u64();
    v.base_index = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
