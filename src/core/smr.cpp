#include "core/smr.hpp"

#include <algorithm>

#include "core/twopc.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

namespace {

// SMR's state transfer reuses the shared replication snapshot bodies with
// config = 0 (the TOB index, not a configuration number, orders its epochs).
using SnapBeginBody = ReplSnapBeginBody;
using SnapBatchBody = ReplSnapBatchBody;
using SnapDoneBody = ReplSnapDoneBody;

constexpr const char* kHbHeader = "smr-hb";

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

}  // namespace

SmrReplica::SmrReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
                       std::shared_ptr<db::Engine> engine,
                       std::shared_ptr<const workload::ProcedureRegistry> registry,
                       std::vector<NodeId> replica_group, std::vector<NodeId> spares,
                       SmrConfig config, ServerCosts costs)
    : world_(world),
      self_(self),
      tob_(tob),
      executor_(std::move(engine), std::move(registry), costs),
      config_(config),
      group_(std::move(replica_group)),
      spares_(std::move(spares)) {
  SHADOW_REQUIRE_MSG(world_.host_of(self_) == world_.host_of(tob_.node()),
                     "SMR replicas must be co-located with their broadcast service node");
  reconfig_client_id_ = ClientId{kControlClientBit + self_.value};

  // The broadcast service hands deliveries to the co-located replica through
  // an in-process queue: model it as a loopback message so that (a) the
  // replica processes them under its own identity and (b) a crashed replica
  // process genuinely stops executing even if the service node survives.
  if (config_.pipelined_execution && world_.is_local(self_)) {
    // Pipelined: one loopback message per decided slot, carrying the decided
    // EncodedBatch as a splice; on_deliver_batch hands it to the executor
    // thread. The idle hook posts the executor's responses back into the
    // transport whenever the consensus loop completes an iteration.
    // Identical-assembly processes construct every replica in the cluster
    // but spawn an executor thread only for the one that runs here.
    tob_.subscribe_local_batch([this](net::NodeContext& ctx, Slot slot,
                                      std::uint64_t base_index,
                                      const tob::EncodedBatch& batch) {
      ctx.send(self_, net::make_msg(kSmrDeliverBatchHeader,
                                    DeliverBatchHandoff{slot, base_index, batch}));
    });
    pipeline_ = std::make_unique<ExecutorPipeline>(
        world_, self_, executor_, config_.pipeline_ring_capacity, config_.tracer,
        config_.metric_scope);
    world_.add_idle_hook([this] { return pipeline_->drain_completions(); });
  } else {
    tob_.subscribe_local([this](net::NodeContext& ctx, Slot slot, std::uint64_t index,
                                const tob::Command& cmd) {
      ctx.send(self_, net::make_msg(kSmrDeliverHeader, DeliverHandoff{slot, index, cmd}));
    });
  }
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
  if (config_.enable_failure_detection) {
    world_.schedule_timer_for_node(self_, world_.now() + config_.hb_period,
                                   [this](net::NodeContext& ctx) { on_heartbeat_tick(ctx); });
  }
  if (config_.router != nullptr && config_.router->shard_count() > 1) {
    xs_ = std::make_unique<XsCoordinator>(
        world_, self_, config_.group, *config_.router, executor_,
        [this](net::NodeContext& ctx, std::uint64_t index, const workload::TxnRequest& req) {
          execute_txn(ctx, index, req);
        },
        config_.tracer);
  }
}

SmrReplica::~SmrReplica() = default;

void SmrReplica::on_deliver(net::NodeContext& ctx, Slot slot, std::uint64_t index,
                            const tob::Command& cmd) {
  delivered_index_ = index;
  if (cmd.client.value >= kControlClientBit) {
    // Remember every delivered control command by exact key: they ride along
    // with rejoin snapshots so the joiner's TOB node deduplicates retries.
    seen_control_keys_.emplace_back(cmd.client.value, cmd.seq);
  }
  const workload::TxnRequest req = workload::decode_request(cmd.payload);
  if (req.proc == kSmrReconfigProc) {
    handle_reconfig(ctx, req, index);
    return;
  }
  if (req.proc == kSmrRejoinProc) {
    handle_rejoin(ctx, req, slot, index);
    return;
  }
  if (!active_) {
    if (joining_) buffered_.emplace_back(index, req);
    return;
  }
  apply_delivered(ctx, index, req);
}

void SmrReplica::apply_delivered(net::NodeContext& ctx, std::uint64_t index,
                                 const workload::TxnRequest& req) {
  if (xs_ && xs_->on_deliver(ctx, index, req)) return;
  execute_txn(ctx, index, req);
}

void SmrReplica::on_deliver_batch(net::NodeContext& ctx, Slot slot, std::uint64_t base_index,
                                  const consensus::EncodedBatch& batch) {
  const tob::Batch& cmds = batch.commands();
  if (cmds.empty()) return;
  bool control = false;
  for (const tob::Command& cmd : cmds) {
    if (cmd.client.value >= kControlClientBit) {
      control = true;
      break;
    }
  }
  if (control || !active_ || (xs_ && xs_->busy())) {
    // Control commands mutate group/replica state on the consensus thread,
    // inactive replicas buffer or discard, and a busy 2PC engine must see
    // every delivery serially so lock-conflict parking stays a deterministic
    // function of the delivery prefix: drain the executor first so delivery
    // order is preserved, then take the single-threaded path.
    pipeline_->flush();
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      on_deliver(ctx, slot, base_index + i, cmds[i]);
    }
    return;
  }
  delivered_index_ = base_index + cmds.size() - 1;
  pipeline_->push(DeliverBatchHandoff{slot, base_index, batch});
}

void SmrReplica::execute_txn(net::NodeContext& ctx, std::uint64_t index,
                             const workload::TxnRequest& req) {
  const TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, index, exec.duplicate,
                                exec.response.committed, req.proc);
  }
  ctx.send(req.reply_to, workload::make_response_msg(exec.response));
}

void SmrReplica::handle_reconfig(net::NodeContext& ctx, const workload::TxnRequest& req,
                                 std::uint64_t index) {
  SHADOW_CHECK(req.params.size() >= 3);
  const NodeId removed{static_cast<std::uint32_t>(req.params[0].as_int())};
  const NodeId added{static_cast<std::uint32_t>(req.params[1].as_int())};
  const NodeId proposer{static_cast<std::uint32_t>(req.params[2].as_int())};

  // Only the first valid proposal against the current group applies.
  if (!contains(group_, removed) || contains(group_, added)) return;
  std::erase(group_, removed);
  group_.push_back(added);

  if (removed == self_) {
    active_ = false;  // deposed (possibly a false suspicion)
    return;
  }
  if (added == self_ && !active_) {
    // We are the replacement: fetch the snapshot from the proposer and
    // buffer every delivery past this reconfiguration point.
    joining_ = true;
    join_from_index_ = index + 1;
    buffered_.clear();
    ctx.send(proposer, net::make_signal(kSnapRequestHeader));
  }
}

void SmrReplica::handle_rejoin(net::NodeContext& ctx, const workload::TxnRequest& req,
                               Slot slot, std::uint64_t index) {
  SHADOW_CHECK(req.params.size() >= 2);
  const NodeId joiner{static_cast<std::uint32_t>(req.params[0].as_int())};
  const NodeId proposer{static_cast<std::uint32_t>(req.params[1].as_int())};
  if (proposer != self_ || joiner == self_ || !active_) return;
  // Serve the snapshot at this deterministic point: every active replica has
  // applied the same prefix. The joiner resumes its TOB node at this very
  // slot — commands delivered before this one (including earlier in this
  // slot) are covered by the dedup floor and the control keys; commands
  // after it the joiner delivers itself, at indexes continuing from
  // resume_index.
  SnapDoneBody done;
  done.resume_slot = slot;
  done.resume_index = index + 1;
  done.control_keys = seen_control_keys_;
  send_snapshot_stream(ctx, joiner, done);
}

void SmrReplica::send_snapshot_stream(net::NodeContext& ctx, NodeId to,
                                      const ReplSnapDoneBody& done_template) {
  // Serialize at the deterministic point we are at now (all actives have
  // applied the same prefix), then stream ~50 KB batches. Row serialization
  // cost is charged here. A pipelined replica drains its executor first —
  // the engine belongs to the executor thread until the pipeline is
  // quiescent.
  if (pipeline_) pipeline_->flush();
  const db::Engine::Snapshot snap = executor_.engine().snapshot(config_.snapshot_batch_bytes);
  ctx.charge(snap.serialize_cost_us);
  if (config_.tracer) {
    config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kBegin, 0, to);
  }
  SnapBeginBody begin;
  begin.schemas = snap.schemas;
  for (const auto& [client, entry] : executor_.dedup_table()) {
    begin.dedup_seqs.emplace_back(client, entry.first);
  }
  ctx.send(to, net::make_msg(kSnapBeginHeader, std::move(begin)));
  for (const auto& batch : snap.batches) {
    ctx.send(to, net::make_msg(kSnapBatchHeader, SnapBatchBody{batch}));
  }
  // Sharded deployments ship the 2PC engine's in-flight state (prepared
  // votes, parked transactions, coordinator entries) as its own stream
  // element; classic clusters have no xs_ and the stream is byte-identical
  // to what it always was.
  if (xs_) ctx.send(to, net::make_msg(kXsSnapHeader, xs_->snapshot()));
  SnapDoneBody done = done_template;
  done.rows = snap.total_rows;
  ctx.send(to, net::make_msg(kSnapDoneHeader, std::move(done)));
}

void SmrReplica::start_rejoin(NodeId via_tob, NodeId proposer, RequestSeq seq) {
  active_ = false;
  joining_ = true;
  rejoining_ = true;
  buffered_.clear();
  rejoin_via_ = via_tob;
  rejoin_proposer_ = proposer;
  rejoin_client_id_ = ClientId{kRejoinClientBit + self_.value};
  rejoin_seq_ = seq;
  // Hold TOB delivery/proposing until the snapshot tells us where to resume.
  tob_.pause_for_rejoin();
  // First request after a short grace period (the transport may still be
  // connecting to peers); retried until the snapshot stream answers.
  rejoin_timer_ = world_.schedule_timer_for_node(
      self_, world_.now() + 100000, [this](net::NodeContext& ctx) { send_rejoin_request(ctx); });
}

void SmrReplica::send_rejoin_request(net::NodeContext& ctx) {
  if (!rejoining_) return;
  workload::TxnRequest req;
  req.client = rejoin_client_id_;
  req.seq = rejoin_seq_;
  req.reply_to = self_;
  req.proc = kSmrRejoinProc;
  req.params = {db::Value(static_cast<std::int64_t>(self_.value)),
                db::Value(static_cast<std::int64_t>(rejoin_proposer_.value))};
  tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
  ctx.send(rejoin_via_, net::make_msg(tob::kBroadcastHeader, std::move(body)));
  rejoin_timer_ = ctx.set_timer(500000, [this](net::NodeContext& c) { send_rejoin_request(c); });
}

void SmrReplica::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kSmrDeliverHeader) {
    const auto& handoff = net::msg_body<DeliverHandoff>(msg);
    on_deliver(ctx, handoff.slot, handoff.index, handoff.command);
    return;
  }
  if (msg.header == kSmrDeliverBatchHeader) {
    const auto& handoff = net::msg_body<DeliverBatchHandoff>(msg);
    on_deliver_batch(ctx, handoff.slot, handoff.base_index, handoff.batch);
    return;
  }
  if (msg.header == kHbHeader) {
    last_heard_[msg.from.value] = ctx.now();
    return;
  }
  if (msg.header == kSnapRequestHeader) {
    // Proposer side of a spare-promotion state transfer. Zeroed resume
    // fields: the spare's TOB node was live all along, so no resume point
    // travels.
    send_snapshot_stream(ctx, msg.from, SnapDoneBody{});
    return;
  }
  if (msg.header == kXsSnapHeader) {
    if (joining_ && xs_) xs_->restore(net::msg_body<XsSnapBody>(msg));
    return;
  }
  if (msg.header == kSnapBeginHeader) {
    if (!joining_) return;  // stray/duplicate stream: we are not expecting one
    const auto& begin = net::msg_body<SnapBeginBody>(msg);
    // Rejoin keeps the dedup seqs around as the TOB resume floor too.
    if (rejoining_) rejoin_floor_ = begin.dedup_seqs;
    executor_.engine().reset_for_restore(begin.schemas);
    std::unordered_map<std::uint32_t, std::pair<RequestSeq, workload::TxnResponse>> dedup;
    for (const auto& [client, seq] : begin.dedup_seqs) {
      dedup[client] = {seq, workload::TxnResponse{ClientId{client}, seq, true, {}, ""}};
    }
    executor_.install_dedup_table(std::move(dedup));
    return;
  }
  if (msg.header == kSnapBatchHeader) {
    if (!joining_) return;
    const auto& body = net::msg_body<SnapBatchBody>(msg);
    // "Row insertion speed constitutes the bottleneck of state transfer."
    ctx.charge(executor_.engine().restore_batch(body.batch));
    if (config_.tracer) {
      config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kBatch,
                                     body.batch.data.size(), msg.from);
    }
    return;
  }
  if (msg.header == kSnapDoneHeader) {
    if (!joining_) return;
    const auto& done = net::msg_body<SnapDoneBody>(msg);
    if (rejoining_) {
      if (rejoin_timer_) {
        world_.cancel(*rejoin_timer_);
        rejoin_timer_.reset();
      }
      delivered_index_ = done.resume_index == 0 ? 0 : done.resume_index - 1;
      tob::TobNode::ResumePoint rp;
      rp.slot = done.resume_slot;
      rp.index_base = done.resume_index;
      rp.floor = std::move(rejoin_floor_);
      rp.control_keys = done.control_keys;
      tob_.resume_from(rp);
      // Seed our own control-key history so a later rejoiner we serve gets
      // the full set, not just what we saw post-restart.
      seen_control_keys_ = done.control_keys;
      rejoining_ = false;
    }
    active_ = true;
    joining_ = false;
    if (config_.tracer) {
      config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kDone, done.rows,
                                     msg.from);
      config_.tracer->recover(ctx.now(), self_, delivered_index_);
    }
    for (const auto& [index, req] : buffered_) apply_delivered(ctx, index, req);
    buffered_.clear();
    return;
  }
}

void SmrReplica::on_heartbeat_tick(net::NodeContext& ctx) {
  if (active_) {
    for (NodeId peer : group_) {
      if (peer != self_) ctx.send(peer, net::make_signal(kHbHeader));
    }
    const net::Time now = ctx.now();
    for (NodeId peer : group_) {
      if (peer == self_) continue;
      // First sighting starts the suspicion clock at "now".
      auto [it, first_sight] = last_heard_.try_emplace(peer.value, now);
      (void)first_sight;
      const net::Time heard = it->second;
      if (now - heard >= config_.suspect_timeout &&
          proposed_removals_.insert(peer.value).second) {
        // Propose to replace the suspect with the first spare outside the group.
        NodeId replacement{};
        bool found = false;
        for (NodeId spare : spares_) {
          if (!contains(group_, spare)) {
            replacement = spare;
            found = true;
            break;
          }
        }
        if (!found) continue;  // no spare available: stay degraded
        workload::TxnRequest req;
        req.client = reconfig_client_id_;
        req.seq = ++reconfig_seq_;
        req.reply_to = self_;
        req.proc = kSmrReconfigProc;
        req.params = {db::Value(static_cast<std::int64_t>(peer.value)),
                      db::Value(static_cast<std::int64_t>(replacement.value)),
                      db::Value(static_cast<std::int64_t>(self_.value))};
        tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
        ctx.send(tob_.node(), net::make_msg(tob::kBroadcastHeader, std::move(body)));
      }
    }
  }
  ctx.set_timer(config_.hb_period, [this](net::NodeContext& c) { on_heartbeat_tick(c); });
}

}  // namespace shadow::core
