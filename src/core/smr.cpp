#include "core/smr.hpp"

#include <algorithm>

#include "core/migrate.hpp"
#include "core/rosnap.hpp"
#include "core/twopc.hpp"
#include "obs/trace.hpp"

namespace shadow::core {

namespace {

// SMR's state transfer reuses the shared replication snapshot bodies with
// config = 0 (the TOB index, not a configuration number, orders its epochs).
using SnapBeginBody = ReplSnapBeginBody;
using SnapBatchBody = ReplSnapBatchBody;
using SnapDoneBody = ReplSnapDoneBody;

constexpr const char* kHbHeader = "smr-hb";

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

}  // namespace

SmrReplica::SmrReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
                       std::shared_ptr<db::Engine> engine,
                       std::shared_ptr<const workload::ProcedureRegistry> registry,
                       std::vector<NodeId> replica_group, std::vector<NodeId> spares,
                       SmrConfig config, ServerCosts costs)
    : world_(world),
      self_(self),
      tob_(tob),
      executor_(std::move(engine), std::move(registry), costs),
      config_(config),
      group_(std::move(replica_group)),
      spares_(std::move(spares)) {
  SHADOW_REQUIRE_MSG(world_.host_of(self_) == world_.host_of(tob_.node()),
                     "SMR replicas must be co-located with their broadcast service node");
  reconfig_client_id_ = ClientId{kControlClientBit + self_.value};
  snap_rx_ = repl::StateTransfer::Receiver({config_.tracer, self_});

  // The broadcast service hands deliveries to the co-located replica through
  // an in-process queue: model it as a loopback message so that (a) the
  // replica processes them under its own identity and (b) a crashed replica
  // process genuinely stops executing even if the service node survives.
  if (config_.pipelined_execution && world_.is_local(self_)) {
    // Pipelined: one loopback message per decided slot, carrying the decided
    // EncodedBatch as a splice; on_deliver_batch hands it to the executor
    // thread. The idle hook posts the executor's responses back into the
    // transport whenever the consensus loop completes an iteration.
    // Identical-assembly processes construct every replica in the cluster
    // but spawn an executor thread only for the one that runs here.
    tob_.subscribe_local_batch([this](net::NodeContext& ctx, Slot slot,
                                      std::uint64_t base_index,
                                      const tob::EncodedBatch& batch) {
      ctx.send(self_, net::make_msg(kSmrDeliverBatchHeader,
                                    DeliverBatchHandoff{slot, base_index, batch}));
    });
    pipeline_ = std::make_unique<ExecutorPipeline>(
        world_, self_, executor_, config_.pipeline_ring_capacity, config_.tracer,
        config_.metric_scope);
    world_.add_idle_hook([this] { return pipeline_->drain_completions(); });
  } else {
    tob_.subscribe_local([this](net::NodeContext& ctx, Slot slot, std::uint64_t index,
                                const tob::Command& cmd) {
      ctx.send(self_, net::make_msg(kSmrDeliverHeader, DeliverHandoff{slot, index, cmd}));
    });
  }
  world_.set_handler(self_, [this](net::NodeContext& ctx, const net::Message& msg) {
    on_message(ctx, msg);
  });
  if (config_.enable_failure_detection) {
    world_.schedule_timer_for_node(self_, world_.now() + config_.hb_period,
                                   [this](net::NodeContext& ctx) { on_heartbeat_tick(ctx); });
  }
  if (config_.router != nullptr && config_.router->shard_count() > 1) {
    view_ = std::make_unique<RoutingView>(config_.router);
    // The parked-drain re-entry runs the same diversion checks as a fresh
    // delivery: a migration may have committed while the transaction sat
    // parked, in which case it must forward, not execute here.
    xs_ = std::make_unique<XsCoordinator>(
        world_, self_, config_.group, *view_, executor_,
        [this](net::NodeContext& ctx, std::uint64_t index, const workload::TxnRequest& req) {
          if (mig_ && mig_->divert(ctx, req)) return;
          execute_txn(ctx, index, req);
        },
        config_.tracer);
    RangeMigrator::Config mcfg;
    mcfg.tracer = config_.tracer;
    mcfg.batch_bytes = config_.snapshot_batch_bytes;
    mcfg.compress = config_.transfer_compression;
    mcfg.flush = [this] {
      if (pipeline_) pipeline_->flush();
    };
    // Same evidence the failure detector acts on: a peer nothing was heard
    // from for a suspect timeout is dead for ready-coverage purposes. A peer
    // never seen yet (no heartbeat tick ran) counts as live — coverage
    // waits, it never skips early.
    mcfg.peer_live = [this](NodeId peer) {
      if (peer == self_) return true;
      const auto it = last_heard_.find(peer.value);
      return it == last_heard_.end() || world_.now() - it->second < config_.suspect_timeout;
    };
    // Laggard recovery: the group committed a migration this replica never
    // buffered (its delivery stream stalled, or the heartbeat view wrote it
    // off). The donor already dropped the range, so the only consistent
    // continuation is a full rejoin from a live peer — the snapshot's rider
    // carries the post-commit rows and the routing override. Seq is the
    // current virtual millisecond: unique across this node's resyncs and
    // disjoint from restart incarnation counters.
    mcfg.resync = [this] {
      if (joining_ || rejoining_ || !active_) return;
      NodeId proposer{};
      bool found = false;
      for (const NodeId peer : group_) {
        if (peer == self_) continue;
        const auto it = last_heard_.find(peer.value);
        if (it == last_heard_.end() || world_.now() - it->second < config_.suspect_timeout) {
          proposer = peer;
          found = true;
          break;
        }
      }
      if (!found) return;  // nobody live to serve a snapshot: stay as we are
      start_rejoin(tob_.node(), proposer, static_cast<RequestSeq>(world_.now() / 1000));
    };
    mig_ = std::make_unique<RangeMigrator>(world_, self_, config_.group, *view_, executor_,
                                           xs_.get(), &group_, &active_, std::move(mcfg));
    xs_->set_range_block(
        [this](const std::string& table, const std::vector<std::int64_t>& keys) {
          return mig_->frozen(table, keys);
        });
    RoServer::Hooks ro_hooks;
    ro_hooks.serving = [this] { return active_ && !joining_ && !rejoining_; };
    ro_hooks.flush = [this] {
      if (pipeline_) pipeline_->flush();
    };
    ro_hooks.tracer = config_.tracer;
    ro_hooks.costs = costs;
    ro_ = std::make_unique<RoServer>(self_, config_.group, *view_, executor_, xs_.get(),
                                     mig_.get(), std::move(ro_hooks));
    // Sharded responses carry the commit coordinates read-only sessions use
    // as per-group floors; the pipelined response path stamps its own.
    if (pipeline_) pipeline_->set_commit_group(config_.group);
  }
}

SmrReplica::~SmrReplica() = default;

void SmrReplica::on_deliver(net::NodeContext& ctx, Slot slot, std::uint64_t index,
                            const tob::Command& cmd) {
  delivered_index_ = index;
  if (cmd.client.value >= kControlClientBit) {
    // Remember every delivered control command by exact key: they ride along
    // with rejoin snapshots so the joiner's TOB node deduplicates retries.
    seen_control_keys_.emplace_back(cmd.client.value, cmd.seq);
  }
  const workload::TxnRequest req = workload::decode_request(cmd.payload);
  if (req.proc == kSmrReconfigProc) {
    handle_reconfig(ctx, req, index);
    return;
  }
  if (req.proc == kSmrRejoinProc) {
    handle_rejoin(ctx, req, slot, index);
    return;
  }
  if (!active_) {
    if (joining_) buffered_.emplace_back(index, req);
    return;
  }
  apply_delivered(ctx, index, req);
}

void SmrReplica::apply_delivered(net::NodeContext& ctx, std::uint64_t index,
                                 const workload::TxnRequest& req) {
  stamp_state_version(index);
  if (mig_ && mig_->on_deliver(ctx, index, req)) return;
  if (xs_ && xs_->on_deliver(ctx, index, req)) return;
  if (mig_ && mig_->divert(ctx, req)) return;
  execute_txn(ctx, index, req);
}

void SmrReplica::stamp_state_version(std::uint64_t index) {
  // Deliveries are stamped as index + 1 so version 0 stays reserved for
  // pre-delivery (loader) writes: the TOB's first delivery has index 0.
  db::Engine& engine = executor_.engine();
  if (index + 1 > engine.state_version()) engine.set_state_version(index + 1);
}

void SmrReplica::on_deliver_batch(net::NodeContext& ctx, Slot slot, std::uint64_t base_index,
                                  const consensus::EncodedBatch& batch) {
  const tob::Batch& cmds = batch.commands();
  if (cmds.empty()) return;
  bool control = false;
  for (const tob::Command& cmd : cmds) {
    if (cmd.client.value >= kControlClientBit) {
      control = true;
      break;
    }
  }
  if (control || !active_ || (xs_ && xs_->busy()) || (mig_ && mig_->needs_serial())) {
    // Control commands mutate group/replica state on the consensus thread,
    // inactive replicas buffer or discard, and a busy 2PC engine must see
    // every delivery serially so lock-conflict parking stays a deterministic
    // function of the delivery prefix: drain the executor first so delivery
    // order is preserved, then take the single-threaded path.
    pipeline_->flush();
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      on_deliver(ctx, slot, base_index + i, cmds[i]);
    }
    return;
  }
  delivered_index_ = base_index + cmds.size() - 1;
  pipeline_->push(DeliverBatchHandoff{slot, base_index, batch});
}

void SmrReplica::execute_txn(net::NodeContext& ctx, std::uint64_t index,
                             const workload::TxnRequest& req) {
  TxnExecutor::Execution exec = executor_.execute(req);
  ctx.charge(exec.cost_us);
  if (view_) {
    // Commit coordinates for read-only session floors (rosnap.hpp): the
    // write is visible at this group's state at or after this position.
    exec.response.commit_group = config_.group;
    exec.response.commit_pos = executor_.engine().state_version();
  }
  if (config_.tracer) {
    config_.tracer->txn_execute(ctx.now(), self_, req.client, req.seq, index, exec.duplicate,
                                exec.response.committed, req.proc);
  }
  ctx.send(req.reply_to, workload::make_response_msg(exec.response));
}

void SmrReplica::handle_reconfig(net::NodeContext& ctx, const workload::TxnRequest& req,
                                 std::uint64_t index) {
  SHADOW_CHECK(req.params.size() >= 3);
  const NodeId removed{static_cast<std::uint32_t>(req.params[0].as_int())};
  const NodeId added{static_cast<std::uint32_t>(req.params[1].as_int())};
  const NodeId proposer{static_cast<std::uint32_t>(req.params[2].as_int())};

  // Only the first valid proposal against the current group applies.
  if (!contains(group_, removed) || contains(group_, added)) return;
  std::erase(group_, removed);
  group_.push_back(added);

  if (removed == self_) {
    active_ = false;  // deposed (possibly a false suspicion)
    return;
  }
  if (added == self_ && !active_) {
    // We are the replacement: fetch the snapshot from the proposer and
    // buffer every delivery past this reconfiguration point.
    joining_ = true;
    join_from_index_ = index + 1;
    buffered_.clear();
    ctx.send(proposer, net::make_signal(kSnapRequestHeader));
  }
  // The membership just changed under any in-flight migration: its ready
  // coverage is over the CURRENT group, so re-evaluate (the removed replica
  // may have been the only one still missing from the ready set).
  if (mig_) mig_->on_membership_change(ctx);
}

void SmrReplica::handle_rejoin(net::NodeContext& ctx, const workload::TxnRequest& req,
                               Slot slot, std::uint64_t index) {
  SHADOW_CHECK(req.params.size() >= 2);
  const NodeId joiner{static_cast<std::uint32_t>(req.params[0].as_int())};
  const NodeId proposer{static_cast<std::uint32_t>(req.params[1].as_int())};
  if (proposer != self_ || joiner == self_ || !active_) return;
  std::uint64_t base_version = 0;
  bool accepts_v2 = false;
  if (req.params.size() >= 4) {
    base_version = static_cast<std::uint64_t>(req.params[2].as_int());
    accepts_v2 = req.params[3].as_int() != 0;
  }
  // Serve the snapshot at this deterministic point: every active replica has
  // applied the same prefix. The joiner resumes its TOB node at this very
  // slot — commands delivered before this one (including earlier in this
  // slot) are covered by the dedup floor and the control keys; commands
  // after it the joiner delivers itself, at indexes continuing from
  // resume_index.
  SnapDoneBody done;
  done.resume_slot = slot;
  done.resume_index = index + 1;
  done.control_keys = seen_control_keys_;
  // Version 0 conflates "empty" with "freshly loaded" across process
  // incarnations, so only a positive base is offered as a delta baseline.
  std::optional<std::uint64_t> delta_since;
  if (base_version > 0) delta_since = base_version;
  send_snapshot_stream(ctx, joiner, done, delta_since, accepts_v2);
}

void SmrReplica::send_snapshot_stream(net::NodeContext& ctx, NodeId to,
                                      const ReplSnapDoneBody& done_template,
                                      std::optional<std::uint64_t> delta_since, bool v2) {
  // Serialize at the deterministic point we are at now (all actives have
  // applied the same prefix), then stream ~50 KB batches. Row serialization
  // cost is charged here. A pipelined replica drains its executor first —
  // the engine belongs to the executor thread until the pipeline is
  // quiescent.
  if (pipeline_) pipeline_->flush();
  repl::SnapBeginBody begin;
  collect_snapshot_dedup(executor_, begin);
  // Sharded deployments ship the migration state (routing overrides +
  // in-flight migrations) and the 2PC engine's in-flight state (prepared
  // votes, parked transactions, coordinator entries) as their own stream
  // elements between the row batches and `done` — migration first, because
  // the 2PC restore recomputes key ownership through the RoutingView the
  // migration rider rebuilds. Classic clusters have neither and the v1
  // stream is byte-identical to what it always was.
  auto xs_rider = [this, &ctx, to] {
    if (mig_) ctx.send(to, net::make_msg(kMigSnapRiderHeader, mig_->snapshot()));
    if (xs_) ctx.send(to, net::make_msg(kXsSnapHeader, xs_->snapshot()));
  };
  if (v2) {
    repl::StateTransfer::SendV2 spec;
    spec.headers = {kSnapBegin2Header, kSnapBatch2Header, kSnapDone2Header, kSnapDelete2Header};
    spec.batch_bytes = config_.snapshot_batch_bytes;
    spec.begin_base = std::move(begin);
    spec.done_base = done_template;
    spec.done_carries_rows = true;
    spec.compress = config_.transfer_compression;
    spec.delta_since = delta_since;
    spec.mid_stream = xs_rider;
    spec.tracer = config_.tracer;
    repl::StateTransfer::send_v2(ctx, executor_.engine(), to, std::move(spec));
  } else {
    repl::StateTransfer::SendV1 spec;
    spec.headers = {kSnapBeginHeader, kSnapBatchHeader, kSnapDoneHeader, ""};
    spec.batch_bytes = config_.snapshot_batch_bytes;
    spec.begin = std::move(begin);
    spec.done = done_template;
    spec.done_carries_rows = true;
    spec.mid_stream = xs_rider;
    spec.tracer = config_.tracer;
    repl::StateTransfer::send_full_v1(ctx, executor_.engine(), to, std::move(spec));
  }
}

void SmrReplica::start_rejoin(NodeId via_tob, NodeId proposer, RequestSeq seq) {
  active_ = false;
  joining_ = true;
  rejoining_ = true;
  buffered_.clear();
  rejoin_via_ = via_tob;
  rejoin_proposer_ = proposer;
  rejoin_client_id_ = ClientId{kRejoinClientBit + self_.value};
  rejoin_seq_ = seq;
  // Offer the engine's version as a delta baseline: nonzero when this
  // replica object survived the crash with its state intact (simulator
  // crash-restart); 0 after a real process restart, which gets a full copy.
  rejoin_base_version_ = executor_.engine().state_version();
  rejoin_requested_ = false;
  rejoin_stream_started_ = false;
  snap_rx_.reset();
  // Hold TOB delivery/proposing until the snapshot tells us where to resume.
  tob_.pause_for_rejoin();
  // First request after a short grace period (the transport may still be
  // connecting to peers); retried until the snapshot stream answers.
  rejoin_timer_ = world_.schedule_timer_for_node(
      self_, world_.now() + 100000, [this](net::NodeContext& ctx) { send_rejoin_request(ctx); });
}

void SmrReplica::send_rejoin_request(net::NodeContext& ctx) {
  if (!rejoining_) return;
  if (rejoin_requested_) {
    // The previous request produced no completed stream by the time this
    // retry fires. Either it was never delivered (transport still
    // connecting) or it WAS delivered and the stream broke mid-air (sender
    // crash, frames lost to checksum corruption) — and in the second case a
    // same-(client, seq) retry is deduplicated by TOB and serves nothing,
    // stalling the rejoin forever. The joiner cannot tell the cases apart,
    // so every retry takes a fresh seq; redundant streams are harmless (a
    // begin while joining restarts the restore, one arriving after the join
    // completed is ignored).
    ++rejoin_seq_;
    rejoin_stream_started_ = false;
    snap_rx_.reset();
  }
  rejoin_requested_ = true;
  workload::TxnRequest req;
  req.client = rejoin_client_id_;
  req.seq = rejoin_seq_;
  req.reply_to = self_;
  req.proc = kSmrRejoinProc;
  req.params = {db::Value(static_cast<std::int64_t>(self_.value)),
                db::Value(static_cast<std::int64_t>(rejoin_proposer_.value)),
                db::Value(static_cast<std::int64_t>(rejoin_base_version_)),
                db::Value(static_cast<std::int64_t>(1))};
  tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
  ctx.send(rejoin_via_, net::make_msg(tob::kBroadcastHeader, std::move(body)));
  rejoin_timer_ = ctx.set_timer(500000, [this](net::NodeContext& c) { send_rejoin_request(c); });
}

void SmrReplica::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kSmrDeliverHeader) {
    const auto& handoff = net::msg_body<DeliverHandoff>(msg);
    on_deliver(ctx, handoff.slot, handoff.index, handoff.command);
    return;
  }
  if (msg.header == kSmrDeliverBatchHeader) {
    const auto& handoff = net::msg_body<DeliverBatchHandoff>(msg);
    on_deliver_batch(ctx, handoff.slot, handoff.base_index, handoff.batch);
    return;
  }
  if (msg.header == kHbHeader) {
    last_heard_[msg.from.value] = ctx.now();
    return;
  }
  if (msg.header == kSnapRequestHeader) {
    // Proposer side of a spare-promotion state transfer. Zeroed resume
    // fields: the spare's TOB node was live all along, so no resume point
    // travels.
    send_snapshot_stream(ctx, msg.from, SnapDoneBody{});
    return;
  }
  if (msg.header == kXsSnapHeader) {
    if (joining_ && xs_) xs_->restore(net::msg_body<XsSnapBody>(msg));
    return;
  }
  if (msg.header == kMigSnapRiderHeader) {
    if (joining_ && mig_) mig_->restore(ctx, net::msg_body<MigSnapBody>(msg));
    return;
  }
  if (mig_ && mig_->on_message(ctx, msg)) return;
  if (ro_ && ro_->on_message(ctx, msg)) return;
  if (msg.header == kSnapBeginHeader) {
    if (!joining_) return;  // stray/duplicate stream: we are not expecting one
    const auto& begin = net::msg_body<SnapBeginBody>(msg);
    if (rejoining_) {
      // Rejoin keeps the dedup seqs around as the TOB resume floor too.
      rejoin_floor_ = begin.dedup_seqs;
      rejoin_stream_started_ = true;
      // The reset wipes the state our delta baseline referred to; a retry
      // after a broken stream must fetch a full copy.
      rejoin_base_version_ = 0;
    }
    snap_rx_.begin_full(executor_.engine(), begin);
    install_snapshot_dedup(executor_, begin);
    return;
  }
  if (msg.header == kSnapBatchHeader) {
    if (!joining_) return;
    // "Row insertion speed constitutes the bottleneck of state transfer."
    snap_rx_.on_batch(ctx, executor_.engine(), net::msg_body<SnapBatchBody>(msg), msg.from);
    return;
  }
  if (msg.header == kSnapDoneHeader) {
    if (!joining_) return;
    finish_join(ctx, net::msg_body<SnapDoneBody>(msg), msg.from);
    return;
  }
  if (msg.header == kSnapBegin2Header) {
    if (!joining_) return;
    const auto& begin = net::msg_body<repl::SnapBegin2Body>(msg);
    if (rejoining_) {
      rejoin_floor_ = begin.base.dedup_seqs;
      rejoin_stream_started_ = true;
      if (begin.mode == static_cast<std::uint8_t>(repl::TransferMode::kFull)) {
        rejoin_base_version_ = 0;  // see the v1 begin handler
      }
    }
    snap_rx_.begin_v2(executor_.engine(), begin);
    install_snapshot_dedup(executor_, begin.base);
    return;
  }
  if (msg.header == kSnapBatch2Header) {
    if (!joining_) return;
    if (!snap_rx_.on_batch2(ctx, executor_.engine(), net::msg_body<repl::SnapBatch2Body>(msg),
                            msg.from)) {
      snap_rx_.reset();  // malformed frame; the rejoin timer re-requests
    }
    return;
  }
  if (msg.header == kSnapDelete2Header) {
    if (!joining_) return;
    snap_rx_.on_delete2(ctx, executor_.engine(), net::msg_body<repl::SnapDelete2Body>(msg));
    return;
  }
  if (msg.header == kSnapDone2Header) {
    if (!joining_) return;
    const auto& done = net::msg_body<repl::SnapDone2Body>(msg);
    if (!snap_rx_.awaiting() || !snap_rx_.complete(done)) {
      // A frame of the stream was lost (checksum corruption surfaces as
      // loss): abandon it and let the rejoin timer request a fresh stream.
      snap_rx_.reset();
      return;
    }
    finish_join(ctx, done.base, msg.from);
    return;
  }
}

void SmrReplica::finish_join(net::NodeContext& ctx, const SnapDoneBody& done, NodeId from) {
  snap_rx_.finish(executor_.engine());
  if (rejoining_) {
    if (rejoin_timer_) {
      world_.cancel(*rejoin_timer_);
      rejoin_timer_.reset();
    }
    delivered_index_ = done.resume_index == 0 ? 0 : done.resume_index - 1;
    tob::TobNode::ResumePoint rp;
    rp.slot = done.resume_slot;
    rp.index_base = done.resume_index;
    rp.floor = std::move(rejoin_floor_);
    rp.control_keys = done.control_keys;
    tob_.resume_from(rp);
    // Seed our own control-key history so a later rejoiner we serve gets
    // the full set, not just what we saw post-restart.
    seen_control_keys_ = done.control_keys;
    rejoining_ = false;
  }
  active_ = true;
  joining_ = false;
  if (config_.tracer) {
    config_.tracer->state_transfer(ctx.now(), self_, obs::StatePhase::kDone, done.rows, from);
    config_.tracer->recover(ctx.now(), self_, delivered_index_);
  }
  for (const auto& [index, req] : buffered_) apply_delivered(ctx, index, req);
  buffered_.clear();
}

void SmrReplica::on_heartbeat_tick(net::NodeContext& ctx) {
  if (active_) {
    for (NodeId peer : group_) {
      if (peer != self_) ctx.send(peer, net::make_signal(kHbHeader));
    }
    const net::Time now = ctx.now();
    for (NodeId peer : group_) {
      if (peer == self_) continue;
      // First sighting starts the suspicion clock at "now".
      auto [it, first_sight] = last_heard_.try_emplace(peer.value, now);
      (void)first_sight;
      const net::Time heard = it->second;
      if (now - heard >= config_.suspect_timeout &&
          proposed_removals_.insert(peer.value).second) {
        // Propose to replace the suspect with the first spare outside the group.
        NodeId replacement{};
        bool found = false;
        for (NodeId spare : spares_) {
          if (!contains(group_, spare)) {
            replacement = spare;
            found = true;
            break;
          }
        }
        if (!found) continue;  // no spare available: stay degraded
        workload::TxnRequest req;
        req.client = reconfig_client_id_;
        req.seq = ++reconfig_seq_;
        req.reply_to = self_;
        req.proc = kSmrReconfigProc;
        req.params = {db::Value(static_cast<std::int64_t>(peer.value)),
                      db::Value(static_cast<std::int64_t>(replacement.value)),
                      db::Value(static_cast<std::int64_t>(self_.value))};
        tob::BroadcastBody body{tob::Command{req.client, req.seq, workload::encode_request(req)}};
        ctx.send(tob_.node(), net::make_msg(tob::kBroadcastHeader, std::move(body)));
      }
    }
  }
  ctx.set_timer(config_.hb_period, [this](net::NodeContext& c) { on_heartbeat_tick(c); });
}

}  // namespace shadow::core
