// The DB executor stage of the pipelined threading model.
//
// In pipelined mode a node is a three-stage pipeline (see ARCHITECTURE.md,
// "Threading and pipeline model"):
//
//   transport I/O thread  →  consensus thread  →  DB executor thread
//        (TcpTransport)      (handlers/timers)       (this file)
//
// ExecutorPipeline owns the third stage: a dedicated thread that executes
// decided transaction batches against the replica's engine while the
// consensus thread goes back to ordering the next slots. The two threads are
// connected by bounded SPSC rings whose values carry the decided
// `consensus::EncodedBatch` by shared_ptr — zero payload bytes cross the
// boundary by copy:
//
//   batches ring      consensus → executor   one DeliverBatchHandoff per
//                                            decided slot, payload spliced
//   completions ring  executor → consensus   one response Message per txn,
//                                            posted to the transport by the
//                                            drain_completions() idle hook
//
// Cross-thread ownership rules (the reason this is safe without locking the
// executor state):
//
//   * The consensus thread calls `batch.commands()` BEFORE pushing, so the
//     memoized decode inside the shared EncodedBatch rep is materialized
//     before publication; the executor thread only ever reads it.
//   * TxnExecutor (engine + dedup table) belongs to the executor thread
//     while the pipeline is running. The consensus thread may touch it only
//     after flush() — which is exactly what the snapshot/state-transfer and
//     shutdown paths do.
//   * Response messages are built on the executor thread through the
//     process-wide wire::Registry, whose read path is mutation-free after
//     register_wire_codecs(); they are handed back to the consensus thread,
//     which alone talks to the transport.
//
// Backpressure: the consensus thread spins push → drain completions (it must
// keep draining, or a full completions ring would deadlock both threads);
// the executor blocks on an empty batches ring. Queue depth (batches pushed
// but not yet executed) is exported as the `pipeline.queue_depth` histogram
// and is what TobNode::set_backlog_probe feeds to adaptive batching.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/spsc_ring.hpp"
#include "core/replica_common.hpp"
#include "net/transport.hpp"

namespace shadow::obs {
class Tracer;
}  // namespace shadow::obs

namespace shadow::core {

class ExecutorPipeline {
 public:
  /// `executor` and `tracer` must outlive the pipeline; the executor thread
  /// starts immediately. `self` is the replica node responses are posted
  /// from (via Transport::post on the consensus thread). `metric_scope`
  /// prefixes the queue-depth metric ("group.<id>." in sharded deployments).
  ExecutorPipeline(net::Transport& world, NodeId self, TxnExecutor& executor,
                   std::size_t ring_capacity, obs::Tracer* tracer,
                   std::string metric_scope = {});
  ~ExecutorPipeline();

  ExecutorPipeline(const ExecutorPipeline&) = delete;
  ExecutorPipeline& operator=(const ExecutorPipeline&) = delete;

  /// Consensus thread: hand one decided slot to the executor. Pre-decodes
  /// the batch (decode-before-publish), records `pipeline.queue_depth`, and
  /// drains completions while waiting if the batches ring is full.
  void push(DeliverBatchHandoff handoff);

  /// Consensus thread: post every queued response back into the transport.
  /// Registered as the transport's idle hook; returns messages posted.
  std::size_t drain_completions();

  /// Consensus thread: block until every pushed batch has executed and all
  /// of its responses are posted. Called before any code path that needs
  /// the executor state quiescent under the consensus thread's feet
  /// (snapshots, control commands, digest checks, shutdown).
  void flush();

  /// Batches pushed but not yet fully executed (consensus thread).
  std::size_t queue_depth() const {
    return static_cast<std::size_t>(pushed_ - executed_batches_.load(std::memory_order_acquire));
  }

  /// Transactions the executor thread has finished (thread-safe).
  std::uint64_t executed_txns() const {
    return executed_txns_.load(std::memory_order_relaxed);
  }

  /// Sharded deployments: stamp responses with this group id and the
  /// command's apply position (read-only session floors, see core/rosnap.hpp).
  /// Call before the first push — the executor thread reads it unfenced.
  void set_commit_group(std::uint32_t group) {
    commit_group_ = group;
    stamp_commit_ = true;
  }

  /// flush() + stop and join the executor thread. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  struct Completion {
    NodeId reply_to{};
    net::Message msg;
  };

  void executor_loop();

  net::Transport& world_;
  NodeId self_;
  TxnExecutor& executor_;
  obs::Tracer* tracer_;
  std::string depth_metric_;  // metric_scope + "pipeline.queue_depth"

  SpscRing<DeliverBatchHandoff> batches_;
  SpscRing<Completion> completions_;

  std::uint64_t pushed_ = 0;                      // consensus thread only
  std::atomic<std::uint64_t> executed_batches_{0};
  std::atomic<std::uint64_t> executed_txns_{0};
  std::uint32_t commit_group_ = 0;  // set once before the first push
  bool stamp_commit_ = false;

  std::thread executor_thread_;  // last: joined before members die
};

}  // namespace shadow::core
