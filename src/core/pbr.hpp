// ShadowDB — primary-backup replication (Sec. III-A).
//
// Normal case (hand-written, as in the paper): the client sends T to the
// primary; on first reception the primary executes and commits T and
// forwards it to the backups; backups execute, commit and acknowledge; the
// primary answers the client once every (recovered) backup acknowledged.
// Execution is sequential at every replica. Transactions are tagged with the
// configuration sequence number; backups only accept matching tags.
//
// Recovery (driven by the formally-generated TOB service) follows the
// paper's seven steps:
//   1. a suspecting replica stops executing in the current configuration;
//   2. it broadcasts a proposal (current seq g + new member list) via TOB;
//   3. on delivery, replicas adopt g+1 iff the proposal's g matches, and
//      send (g+1, seq_r) to all members of the new configuration;
//   4. everyone waits for all members: the primary is the replica with the
//      largest executed sequence number (ties → smallest id);
//   5. the new primary sends missing transactions from its bounded cache,
//      or a full snapshot when the cache does not reach far enough;
//   6. each backup acknowledges recovery;
//   7. the primary resumes once all backups recovered — or, with the
//      overlap optimization, once at least one backup is up to date, while
//      the remaining snapshots stream in the background and the recovering
//      replicas buffer forwarded transactions.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/replica_common.hpp"
#include "repl/state_transfer.hpp"
#include "tob/tob.hpp"

namespace shadow::core {

inline constexpr const char* kPbrReconfigProc = "::pbr-reconfig";
inline constexpr const char* kPbrAckHeader = "pbr-ack";
inline constexpr const char* kPbrElectHeader = "pbr-elect";
inline constexpr const char* kPbrCatchupHeader = "pbr-catchup";
inline constexpr const char* kPbrSnapBeginHeader = "pbr-snap-begin";
inline constexpr const char* kPbrSnapBatchHeader = "pbr-snap-batch";
inline constexpr const char* kPbrSnapDoneHeader = "pbr-snap-done";
inline constexpr const char* kPbrRecoveredHeader = "pbr-recovered";
inline constexpr const char* kPbrRedirectHeader = "pbr-redirect";
inline constexpr const char* kPbrHbHeader = "pbr-hb";
inline constexpr const char* kPbrDeliverHeader = "pbr-deliver";

/// Redirect sent to clients that contact a non-primary (or a recovering
/// primary): points at the current primary, if known.
struct RedirectBody {
  NodeId primary{};
  ConfigSeq config = 0;
  bool busy = false;  // true: retry the same node later
};

struct PbrConfig {
  net::Time hb_period = 1000000;         // 1 s
  net::Time suspect_timeout = 10000000;  // 10 s detection (Fig. 10(a) setting)
  std::size_t txn_cache_max = 20000;     // bounded executed-transaction cache
  std::size_t snapshot_batch_bytes = 50 * 1024;
  bool overlap_state_transfer = true;
  bool enable_failure_detection = true;
  obs::Tracer* tracer = nullptr;         // optional structured trace recorder
};

class PbrReplica {
 public:
  PbrReplica(net::Transport& world, NodeId self, tob::TobNode& tob,
             std::shared_ptr<db::Engine> engine,
             std::shared_ptr<const workload::ProcedureRegistry> registry,
             std::vector<NodeId> initial_group,  // [0] is the initial primary
             std::vector<NodeId> spares, PbrConfig config = {}, ServerCosts costs = {});

  NodeId node() const { return self_; }
  bool is_primary() const { return state_ == State::kNormal && primary_ == self_; }
  ConfigSeq config_seq() const { return config_seq_; }
  const std::vector<NodeId>& members() const { return members_; }
  std::uint64_t executed_order() const { return executed_order_; }
  std::uint64_t state_digest() const { return executor_.engine().state_digest(); }
  std::uint64_t executed() const { return executor_.executed_count(); }
  db::Engine& engine() { return executor_.engine(); }

  /// Marks this replica as a passive spare (watches reconfigurations only).
  void make_spare() { state_ = State::kSpare; }

 private:
  enum class State : std::uint8_t {
    kNormal,      // member of the active configuration
    kElecting,    // proposal adopted, waiting for (g+1, seq) from all members
    kRecovering,  // backup receiving catch-up/snapshot
    kSpare,       // passive replacement candidate
    kDeposed,     // removed from the configuration
  };

  // Message bodies are the shared replication shapes (one codec each).
  using ForwardBody = ReplForwardBody;
  using AckBody = ReplAckBody;
  using ElectBody = ReplElectBody;
  using CatchupBody = ReplCatchupBody;
  using SnapBeginBody = ReplSnapBeginBody;
  using SnapBatchBody = ReplSnapBatchBody;
  using SnapDoneBody = ReplSnapDoneBody;

  void on_message(net::NodeContext& ctx, const net::Message& msg);
  void on_deliver(net::NodeContext& ctx, const tob::Command& cmd);
  void on_client_request(net::NodeContext& ctx, const workload::TxnRequest& req);
  void on_forward(net::NodeContext& ctx, const ForwardBody& fwd);
  void on_ack(net::NodeContext& ctx, NodeId from, const AckBody& ack);
  void on_elect(net::NodeContext& ctx, NodeId from, const ElectBody& elect);
  void on_heartbeat_tick(net::NodeContext& ctx);
  void suspect_and_propose(net::NodeContext& ctx, const std::vector<NodeId>& suspects);
  void maybe_finish_election(net::NodeContext& ctx);
  void start_backup_recovery(net::NodeContext& ctx);
  void send_state_to(net::NodeContext& ctx, NodeId backup, std::uint64_t backup_seq);
  void backup_recovered(net::NodeContext& ctx, NodeId backup);
  void execute_and_cache(net::NodeContext& ctx, std::uint64_t order,
                         const workload::TxnRequest& req, bool send_response);
  void apply_buffered_forwards(net::NodeContext& ctx);
  void redirect(net::NodeContext& ctx, NodeId to, bool busy);

  net::Transport& world_;
  NodeId self_;
  tob::TobNode& tob_;
  TxnExecutor executor_;
  PbrConfig config_;
  ServerCosts costs_;

  State state_ = State::kNormal;
  ConfigSeq config_seq_ = 0;
  std::vector<NodeId> members_;
  std::vector<NodeId> spares_;
  NodeId primary_{};
  std::uint64_t executed_order_ = 0;  // last executed transaction order index
  std::uint64_t next_order_ = 0;      // primary: next order index to assign

  // Primary bookkeeping: outstanding transactions awaiting backup acks.
  struct Outstanding {
    workload::TxnRequest request;
    workload::TxnResponse response;
    std::set<std::uint32_t> waiting;  // backups that have not acked yet
  };
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::set<std::uint32_t> recovered_backups_;  // acks required only from these

  // Bounded cache of executed transactions, for catch-up (step 5).
  std::deque<std::pair<std::uint64_t, workload::TxnRequest>> txn_cache_;

  // Election state.
  std::map<ConfigSeq, std::map<std::uint32_t, std::uint64_t>> pending_elects_;

  // Backup recovery state. The inbound snapshot stream (awaiting flag,
  // pending order) lives in the shared state-transfer receiver.
  std::deque<ForwardBody> buffered_forwards_;
  repl::StateTransfer::Receiver snap_rx_;

  // Failure detection.
  std::map<std::uint32_t, net::Time> last_heard_;
  ClientId reconfig_client_id_;
  RequestSeq reconfig_seq_ = 0;
  std::set<std::uint64_t> proposed_;  // (config, suspect) pairs already proposed
  bool stopped_ = false;              // step 1: configuration stopped
  std::size_t group_size_target_ = 0;

  std::uint64_t responses_sent_ = 0;

  /// Step 7 / overlap optimization: the primary accepts new transactions
  /// once every backup recovered, or — with overlap enabled and at least
  /// three members — once one backup is up to date.
  bool accepting() const {
    if (members_.size() <= 1) return true;
    const std::size_t backups = members_.size() - 1;
    if (config_.overlap_state_transfer && members_.size() >= 3) {
      return !recovered_backups_.empty();
    }
    return recovered_backups_.size() >= backups;
  }
};

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::RedirectBody> {
  static void encode(BytesWriter& w, const core::RedirectBody& v) {
    w.u32(v.primary.value);
    w.u64(v.config);
    w.u8(v.busy ? 1 : 0);
  }
  static core::RedirectBody decode(BytesReader& r) {
    core::RedirectBody v;
    v.primary = NodeId{r.u32()};
    v.config = r.u64();
    v.busy = r.u8() != 0;
    return v;
  }
};

}  // namespace shadow::wire
