#include "core/codecs.hpp"

#include <mutex>

#include "consensus/paxos.hpp"
#include "consensus/two_third.hpp"
#include "core/chain.hpp"
#include "core/migrate.hpp"
#include "core/pbr.hpp"
#include "core/replica_common.hpp"
#include "core/rosnap.hpp"
#include "core/smr.hpp"
#include "core/twopc.hpp"
#include "tob/tob.hpp"
#include "wire/registry.hpp"
#include "workload/messages.hpp"

namespace shadow::core {

namespace {

void register_wire_codecs_impl() {
  wire::Registry& reg = wire::registry();

  // Consensus: Paxos Synod and TwoThird.
  reg.ensure<consensus::P1aBody>(consensus::kP1aHeader);
  reg.ensure<consensus::P1bBody>(consensus::kP1bHeader);
  reg.ensure<consensus::P2aBody>(consensus::kP2aHeader);
  reg.ensure<consensus::P2bBody>(consensus::kP2bHeader);
  reg.ensure<consensus::DecisionBody>(consensus::kDecisionHeader);
  reg.ensure<consensus::ProposeBody>(consensus::kProposeHeader);
  reg.ensure<consensus::VoteBody>(consensus::kVoteHeader);
  reg.ensure<consensus::DecideBody>(consensus::kTwoThirdDecideHeader);

  // Total order broadcast service.
  reg.ensure<tob::BroadcastBody>(tob::kBroadcastHeader);
  reg.ensure<tob::AckBody>(tob::kAckHeader);
  reg.ensure<tob::DeliverBody>(tob::kDeliverHeader);
  reg.ensure<tob::RelayBody>(tob::kRelayHeader);

  // Client/server transaction traffic.
  reg.ensure<workload::TxnRequest>(workload::kTxnRequestHeader);
  reg.ensure<workload::TxnResponse>(workload::kTxnResponseHeader);

  // SMR replica: TOB→replica loopback handoffs and state transfer.
  // (smr-hb and smr-snap-req are bodyless signals: nothing to decode.)
  reg.ensure<DeliverHandoff>(kSmrDeliverHeader);
  reg.ensure<DeliverBatchHandoff>(kSmrDeliverBatchHeader);
  reg.ensure<ReplSnapBeginBody>(kSnapBeginHeader);
  reg.ensure<ReplSnapBatchBody>(kSnapBatchHeader);
  reg.ensure<ReplSnapDoneBody>(kSnapDoneHeader);

  // v2 state-transfer stream (compressed / delta rejoin).
  reg.ensure<repl::SnapBegin2Body>(kSnapBegin2Header);
  reg.ensure<repl::SnapBatch2Body>(kSnapBatch2Header);
  reg.ensure<repl::SnapDelete2Body>(kSnapDelete2Header);
  reg.ensure<repl::SnapDone2Body>(kSnapDone2Header);

  // Cross-shard 2PC (sharded deployments; every group shares one header
  // vocabulary — the participant group travels inside the message bodies,
  // so N groups in one process register exactly the same bindings).
  reg.ensure<XsSnapBody>(kXsSnapHeader);

  // Read-only snapshot reads (node-addressed, never enter a TOB log).
  reg.ensure<RoSnapBody>(kRoSnapHeader);
  reg.ensure<RoSnapRespBody>(kRoSnapRespHeader);
  reg.ensure<RoReadBody>(kRoReadHeader);
  reg.ensure<RoReadRespBody>(kRoReadRespHeader);

  // Shard-range migration: pull handshake, the filtered v2 stream mounted on
  // its own headers, and the rejoin/promotion rider.
  reg.ensure<MigPullBody>(kMigPullHeader);
  reg.ensure<repl::SnapBegin2Body>(kMigSnapBeginHeader);
  reg.ensure<repl::SnapBatch2Body>(kMigSnapBatchHeader);
  reg.ensure<repl::SnapDelete2Body>(kMigSnapDeleteHeader);
  reg.ensure<repl::SnapDone2Body>(kMigSnapDoneHeader);
  reg.ensure<MigSnapBody>(kMigSnapRiderHeader);

  // Primary/backup and chain replication share the forwarding header (the
  // body's config scopes it to whichever protocol the receiver runs).
  reg.ensure<ReplForwardBody>(kReplFwdHeader);
  reg.ensure<ReplAckBody>(kPbrAckHeader);
  reg.ensure<ReplElectBody>(kPbrElectHeader);
  reg.ensure<ReplCatchupBody>(kPbrCatchupHeader);
  reg.ensure<ReplSnapBeginBody>(kPbrSnapBeginHeader);
  reg.ensure<ReplSnapBatchBody>(kPbrSnapBatchHeader);
  reg.ensure<ReplSnapDoneBody>(kPbrSnapDoneHeader);
  reg.ensure<ReplSnapDoneBody>(kPbrRecoveredHeader);
  reg.ensure<RedirectBody>(kPbrRedirectHeader);
  reg.ensure<consensus::Command>(kPbrDeliverHeader);

  // Chain replication (shares the Repl* body shapes and the redirect body).
  reg.ensure<ReplElectBody>(kChainElectHeader);
  reg.ensure<ReplCatchupBody>(kChainCatchupHeader);
  reg.ensure<ReplSnapBeginBody>(kChainSnapBeginHeader);
  reg.ensure<ReplSnapBatchBody>(kChainSnapBatchHeader);
  reg.ensure<ReplSnapDoneBody>(kChainSnapDoneHeader);
  reg.ensure<ReplSnapDoneBody>(kChainRecoveredHeader);
  reg.ensure<consensus::Command>(kChainDeliverHeader);
}

}  // namespace

void register_wire_codecs() {
  // Once per process, even when many groups assemble concurrently with live
  // transport threads already decoding frames (a sharded in-process cluster
  // builds group g+1 while group g's TCP loops run): Registry::ensure is
  // idempotent per header but not synchronized, so the one-time guard is
  // what keeps later assemblies from racing the map.
  static std::once_flag once;
  std::call_once(once, register_wire_codecs_impl);
}

}  // namespace shadow::core
