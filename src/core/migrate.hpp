// Dynamic shard rebalancing: TOB-ordered range migration between groups.
//
// A migration moves ownership of `table` keys in [lo, hi) from group `from`
// to group `to`, without stopping either group and without any step that is
// not a deterministic function of some group's delivery order:
//
//   split    an administrator broadcasts `::mig-split` into EVERY group's
//            log (redundant rebroadcasts collapse under TOB dedup). At its
//            delivery each group freezes the range: transactions touching it
//            are answered with a retryable "range-frozen" abort (single-
//            shard) or a NO vote (2PC prepares, via XsCoordinator's range-
//            block hook), so the donor's copy of the range stops changing;
//   stream   each replica of `to` pulls the frozen range from any replica of
//            `from` (they all hold the identical frozen state — no donor
//            takeover protocol is needed when the donor dies) as a filtered
//            v2 state-transfer stream (repl/state_transfer.hpp), and buffers
//            the row batches without applying them;
//   ready    a `to` replica whose buffer is complete broadcasts `::mig-
//            ready` into its OWN group's log; a replica broadcasts `::mig-
//            commit` into every group's log once the delivered ready set
//            covers every member its heartbeat view calls live, OR covers a
//            majority of the membership (re-checked on reconfigurations and
//            every tick). The laggards a majority commit leaves behind —
//            crashed members, or live ones whose delivery stream stalled —
//            cannot apply the flip from their own buffer, so they recover
//            through a full rejoin resync (below) instead of blocking the
//            commit forever;
//   commit   at its own `::mig-commit` delivery each group atomically flips
//            routing by installing a RangeOverride in its RoutingView: the
//            `from` group first deletes its (still pre-override-owned) rows
//            of the range, the `to` group applies its buffered upserts, and
//            the range unfreezes everywhere.
//
// Clients keep routing by the base partition function; the `from` group
// forwards transactions it no longer owns to the current owner (one extra
// hop, answered from the owner). A forwarded retry is answered from the
// donor's dedup table so nothing executes twice, and 2PC prepares carry the
// coordinator's routing epoch so a participant with a different partition
// picture refuses to stage ("xs-epoch-retry") instead of misplanning.
//
// Pipelined executors: while a migration is live — and, on the `from` group,
// forever after (its deliveries may need forwarding) — decided batches take
// the serial delivery path (see needs_serial), trading the donor group's
// pipelining for correctness of the diversion checks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/replica_common.hpp"
#include "core/router.hpp"
#include "core/twopc.hpp"
#include "db/wire.hpp"
#include "net/transport.hpp"

namespace shadow::core {

inline constexpr const char* kMigSplitProc = "::mig-split";
inline constexpr const char* kMigReadyProc = "::mig-ready";
inline constexpr const char* kMigCommitProc = "::mig-commit";

/// Node-addressed pull + filtered v2 snapshot stream headers (the stream's
/// `tag` carries the migration id, so concurrent migrations never mix).
inline constexpr const char* kMigPullHeader = "mig-pull";
inline constexpr const char* kMigSnapBeginHeader = "mig-snap-begin2";
inline constexpr const char* kMigSnapBatchHeader = "mig-snap-batch2";
inline constexpr const char* kMigSnapDeleteHeader = "mig-snap-del2";
inline constexpr const char* kMigSnapDoneHeader = "mig-snap-done2";
/// Rejoin/promotion snapshot rider carrying MigSnapBody. Sent BEFORE the 2PC
/// rider: XsCoordinator::restore recomputes key ownership through the
/// RoutingView, which this rider's overrides must have rebuilt first.
inline constexpr const char* kMigSnapRiderHeader = "smr-snap-mig";

/// Synthetic client-id spaces (all above kControlClientBit, so the pipelined
/// delivery path flushes for them; see the 2PC spaces in core/twopc.hpp).
inline constexpr std::uint32_t kMigAdminClientBit = 0x44000000u;   // admin → all TOBs
inline constexpr std::uint32_t kMigCommitClientBit = 0x45000000u;  // to-replicas → all TOBs
inline constexpr std::uint32_t kMigReadyClientBit = 0x46000000u;   // to-replica → own TOB
inline constexpr std::uint32_t kMigIdMask = 0x000FFFFFu;

/// One range migration's immutable parameters.
struct RangeSpec {
  std::uint64_t mid = 0;  // migration id, unique per deployment
  std::string table;
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  GroupId from = 0;
  GroupId to = 0;
  NodeId donor{0};  // preferred serving replica (pull rotation start)
};

/// The `::mig-split` command an administrator broadcasts into every group's
/// TOB (wire client kMigAdminClientBit | mid, seq 1 — rebroadcasts collapse).
/// The caller fills reply_to.
workload::TxnRequest make_split_request(const RangeSpec& spec);

/// A `to` replica's pull request for one migration's frozen range.
struct MigPullBody {
  std::uint64_t mid = 0;
};

/// Migration state shipped with rejoin/promotion snapshots: the committed
/// overrides (rebuilds the RoutingView) and, per in-flight migration, the
/// spec, the delivered ready set, and the joiner's would-be buffer so a
/// promoted spare can complete the handshake itself.
struct MigSnapBody {
  struct Inflight {
    RangeSpec spec;
    std::vector<std::uint32_t> ready;
    std::uint8_t buffered = 0;
    std::vector<db::Engine::SnapshotBatch> batches;
  };
  std::vector<RangeOverride> overrides;
  std::vector<Inflight> inflight;
};

/// Per-replica migration engine, owned by an SmrReplica in a sharded
/// deployment. All delivery-driven transitions run on the consensus thread;
/// like the 2PC engine, state is a pure function of the group's delivery
/// order (plus the pull buffer, which only ever feeds a delivery-ordered
/// commit).
class RangeMigrator {
 public:
  struct Config {
    obs::Tracer* tracer = nullptr;
    std::size_t batch_bytes = 50 * 1024;
    bool compress = false;
    /// Drains the owning replica's executor pipeline before the engine is
    /// read for a stream (the engine belongs to the executor thread until
    /// the pipeline is quiescent).
    std::function<void()> flush;
    /// Ready coverage counts only members this predicate calls live (the
    /// owning replica's heartbeat view). A crashed member can stay in the
    /// group forever — replacement needs a free spare AND the one-shot
    /// reconfig proposal surviving the wire — and a commit must not wait for
    /// a ready broadcast that will never come. A replica wrongly called dead
    /// here re-syncs through the rejoin snapshot (whose rider carries the
    /// override), the same recovery as any other missed suffix. Unset: every
    /// member counts.
    std::function<bool(NodeId)> peer_live;
    /// Full self-resync (SmrReplica::start_rejoin): invoked when this
    /// replica delivers a `::mig-commit` it has no buffer for — its group
    /// committed without it (dead by heartbeat, or alive with a stalled
    /// delivery stream), and the donor's copy of the range is already gone,
    /// so a fresh snapshot from a peer is the only consistent way forward.
    /// Unset: the commit half-applies and "mig.buffer_miss" records the
    /// divergence.
    std::function<void()> resync;
  };

  RangeMigrator(net::Transport& world, NodeId self, GroupId group, RoutingView& view,
                TxnExecutor& executor, XsCoordinator* xs,
                const std::vector<NodeId>* group_members, const bool* active, Config cfg);

  /// Delivery interception for the `::mig-*` control commands. Returns true
  /// if consumed.
  bool on_deliver(net::NodeContext& ctx, std::uint64_t index, const workload::TxnRequest& req);

  /// Post-2PC delivery check for ordinary transactions: answers a retryable
  /// "range-frozen" abort for frozen keys, forwards (or answers from the
  /// dedup table) transactions this group no longer owns. Returns true if
  /// consumed; false means the caller executes normally.
  bool divert(net::NodeContext& ctx, const workload::TxnRequest& req);

  /// True when any key of `keys` lies in a live (uncommitted) migration's
  /// range — mounted as the 2PC engine's range-block hook.
  bool frozen(const std::string& table, const std::vector<std::int64_t>& keys) const;

  /// Routing decision for a versioned read of (table, key) at `version`
  /// (0 = current). nullopt: serve locally. A key owned here serves here; a
  /// frozen (pre-flip) range also serves here — its rows are immutable and
  /// still ours. A donated key serves here only when the read is pinned
  /// BELOW the committed flip's version: the flip captured the donated
  /// rows' pre-images into the version chains when it deleted them. Reads at
  /// or above the flip (and "current" reads) return the owner to forward to.
  std::optional<GroupId> ro_forward_target(const std::string& table, std::int64_t key,
                                           std::uint64_t version) const;

  /// Node-addressed traffic: pull requests (donor side) and the filtered
  /// snapshot stream (receiver side). Returns true if consumed.
  bool on_message(net::NodeContext& ctx, const net::Message& msg);

  /// Re-evaluates ready coverage after a reconfiguration changed the group.
  void on_membership_change(net::NodeContext& ctx);

  /// True while decided batches must take the serial delivery path: a live
  /// migration (frozen-range checks), or this group donated a range at some
  /// point (its deliveries may need forwarding forever).
  bool needs_serial() const;

  MigSnapBody snapshot() const;
  void restore(net::NodeContext& ctx, const MigSnapBody& body);

 private:
  struct Migration {
    RangeSpec spec;
    std::set<std::uint32_t> ready;
    bool committed = false;
    // Receiver (to-group) pull/buffer state.
    bool receiving = false;
    bool buffered = false;
    std::uint64_t frames_seen = 0;
    std::uint64_t frames_last_tick = 0;
    std::uint32_t pull_attempts = 0;
    std::uint32_t commit_resends = 0;
    std::vector<db::Engine::SnapshotBatch> batches;
  };

  void handle_split(net::NodeContext& ctx, const workload::TxnRequest& req);
  void handle_ready(net::NodeContext& ctx, const workload::TxnRequest& req);
  void handle_commit(net::NodeContext& ctx, const workload::TxnRequest& req);
  void serve_pull(net::NodeContext& ctx, std::uint64_t mid, NodeId to);
  void send_pull(net::NodeContext& ctx, Migration& m);
  void broadcast_ready(net::NodeContext& ctx, const Migration& m);
  void broadcast_commit(net::NodeContext& ctx, const Migration& m);
  void maybe_commit(net::NodeContext& ctx, Migration& m);
  void broadcast_into(net::NodeContext& ctx, GroupId g, ClientId client, RequestSeq seq,
                      const workload::TxnRequest& req);
  void on_tick(net::NodeContext& ctx);
  void count(const char* metric, std::uint64_t n = 1) const;

  net::Transport& world_;
  NodeId self_;
  GroupId group_;
  RoutingView& view_;
  TxnExecutor& executor_;
  XsCoordinator* xs_;
  const std::vector<NodeId>* group_members_;  // owning replica's current group
  const bool* active_;                        // owning replica's active flag
  Config cfg_;

  std::map<std::uint64_t, Migration> migrations_;
  std::uint32_t bcast_attempts_ = 0;  // rotates the TOB frontend per broadcast
  /// Committed routing flips with the engine state version each applied at
  /// (this group's own delivery order), for ro_forward_target. Cleared on
  /// restore: a resynced replica's version chains don't reach below its
  /// snapshot anyway, so forwarding everything donated stays correct.
  std::vector<std::pair<RangeOverride, std::uint64_t>> committed_flips_;
};

}  // namespace shadow::core

namespace shadow::wire {

template <>
struct Codec<core::RangeSpec> {
  static void encode(BytesWriter& w, const core::RangeSpec& v) {
    w.u64(v.mid);
    w.str(v.table);
    w.u64(static_cast<std::uint64_t>(v.lo));
    w.u64(static_cast<std::uint64_t>(v.hi));
    w.u32(v.from);
    w.u32(v.to);
    w.u32(v.donor.value);
  }
  static core::RangeSpec decode(BytesReader& r) {
    core::RangeSpec v;
    v.mid = r.u64();
    v.table = r.str();
    v.lo = static_cast<std::int64_t>(r.u64());
    v.hi = static_cast<std::int64_t>(r.u64());
    v.from = r.u32();
    v.to = r.u32();
    v.donor = NodeId{r.u32()};
    return v;
  }
};

template <>
struct Codec<core::MigPullBody> {
  static void encode(BytesWriter& w, const core::MigPullBody& v) { w.u64(v.mid); }
  static core::MigPullBody decode(BytesReader& r) { return {r.u64()}; }
};

template <>
struct Codec<core::RangeOverride> {
  static void encode(BytesWriter& w, const core::RangeOverride& v) {
    w.str(v.table);
    w.u64(static_cast<std::uint64_t>(v.lo));
    w.u64(static_cast<std::uint64_t>(v.hi));
    w.u32(v.from);
    w.u32(v.to);
  }
  static core::RangeOverride decode(BytesReader& r) {
    core::RangeOverride v;
    v.table = r.str();
    v.lo = static_cast<std::int64_t>(r.u64());
    v.hi = static_cast<std::int64_t>(r.u64());
    v.from = r.u32();
    v.to = r.u32();
    return v;
  }
};

template <>
struct Codec<core::MigSnapBody> {
  static void encode(BytesWriter& w, const core::MigSnapBody& v) {
    Codec<std::vector<core::RangeOverride>>::encode(w, v.overrides);
    w.u32(static_cast<std::uint32_t>(v.inflight.size()));
    for (const auto& e : v.inflight) {
      Codec<core::RangeSpec>::encode(w, e.spec);
      Codec<std::vector<std::uint32_t>>::encode(w, e.ready);
      w.u8(e.buffered);
      Codec<std::vector<db::Engine::SnapshotBatch>>::encode(w, e.batches);
    }
  }
  static core::MigSnapBody decode(BytesReader& r) {
    core::MigSnapBody v;
    v.overrides = Codec<std::vector<core::RangeOverride>>::decode(r);
    v.inflight.resize(r.u32());
    for (auto& e : v.inflight) {
      e.spec = Codec<core::RangeSpec>::decode(r);
      e.ready = Codec<std::vector<std::uint32_t>>::decode(r);
      e.buffered = r.u8();
      e.batches = Codec<std::vector<db::Engine::SnapshotBatch>>::decode(r);
    }
    return v;
  }
};

}  // namespace shadow::wire
