// Pre-registration of every wire codec a ShadowDB cluster process can
// receive.
//
// `net::make_msg` registers a header→codec binding lazily at SEND time,
// which is enough inside one process (the simulator, or a single-host
// loopback): by the time a frame is decoded, the sender in the same process
// has already registered it. Across real processes that breaks down — a TCP
// receiver must decode headers it has never sent (a follower receives
// px-p2a before it ever proposes; a fresh replica receives snapshots before
// it sends anything). `register_wire_codecs()` installs the full protocol
// vocabulary up front; the cluster assembly helpers call it so every
// "process" of a multi-process cluster can decode every frame from frame
// one. Idempotent (wire::Registry::ensure is), cheap, and safe to call from
// multiple assemblies in one test binary.
#pragma once

namespace shadow::core {

void register_wire_codecs();

}  // namespace shadow::core
