// Keyspace partitioning across replication groups.
//
// A sharded deployment runs N independent consensus groups (see
// core/group.hpp); the router maps every transaction onto the groups that
// own its partition keys. Single-shard transactions are broadcast straight
// into their group's TOB; cross-shard transactions go to a coordinator group
// (the first participant) which drives a TOB-ordered two-phase commit
// (core/twopc.hpp).
//
// The partition function is deliberately trivial and rebalance-free —
// `key mod shards` — so that routing is a pure function of the request:
// every client and every replica computes the same participant set forever,
// which is what makes the 2PC message flow deterministic and the merged
// traces checkable offline.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "workload/messages.hpp"

namespace shadow::obs {
class Tracer;
}

namespace shadow::core {

/// Identifies one replication group (one TOB instance + its replica set).
using GroupId = std::uint32_t;

class ShardRouter {
 public:
  /// How a procedure's parameters map onto the partitioned keyspace.
  struct ProcInfo {
    std::string table;                    // lock/partition namespace
    std::vector<std::size_t> key_params;  // parameter indices holding keys
  };

  explicit ShardRouter(std::size_t shards);

  std::size_t shard_count() const { return shards_; }

  /// Stable, rebalance-free partition: key → group by modulo.
  GroupId shard_of_key(std::int64_t key) const {
    return static_cast<GroupId>(static_cast<std::uint64_t>(key) %
                                static_cast<std::uint64_t>(shards_));
  }

  /// Registers a procedure's partition-key layout. Procedures with no key
  /// parameters (full scans like bank.audit) and unregistered procedures pin
  /// to group 0.
  void register_proc(const std::string& proc, ProcInfo info);
  /// Registers the built-in bank + TPC-C layouts (bank: account params;
  /// TPC-C: the warehouse parameter — every TPC-C procedure is
  /// single-warehouse here, so TPC-C never crosses shards).
  void install_default_extractors();

  const ProcInfo* proc_info(const std::string& proc) const;
  /// The request's partition keys (empty for key-less procedures).
  std::vector<std::int64_t> keys_of(const workload::TxnRequest& req) const;
  /// Sorted, deduplicated participant groups (never empty; {0} for key-less).
  std::vector<GroupId> shards_of(const workload::TxnRequest& req) const;
  bool cross_shard(const workload::TxnRequest& req) const;
  /// The group that owns a transaction end-to-end (single-shard) or drives
  /// its two-phase commit (cross-shard): the first participant group.
  GroupId coordinator_of(const workload::TxnRequest& req) const;

  /// Deployment wiring (filled by make_sharded_smr_cluster after the groups
  /// are built; replicas only consult targets at delivery time).
  void set_group_targets(GroupId g, std::vector<NodeId> tob, std::vector<NodeId> replicas);
  const std::vector<NodeId>& tob_targets(GroupId g) const;
  const std::vector<NodeId>& replica_targets(GroupId g) const;

  /// Client-side routing: the submission targets (coordinator group's TOB
  /// nodes) for this request. Counts `router.txns_total` / and, for
  /// cross-shard requests, `router.cross_shard` on the attached tracer.
  const std::vector<NodeId>& route(const workload::TxnRequest& req) const;

  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Routing statistics (mirrors the `router.*` counters; atomics because
  /// clients may route from multiple threads in a pipelined process).
  std::uint64_t routed_count() const { return routed_.load(std::memory_order_relaxed); }
  std::uint64_t cross_shard_count() const {
    return cross_routed_.load(std::memory_order_relaxed);
  }
  double cross_shard_ratio() const {
    const std::uint64_t total = routed_count();
    return total == 0 ? 0.0 : static_cast<double>(cross_shard_count()) / total;
  }

 private:
  std::size_t shards_;
  std::map<std::string, ProcInfo> procs_;
  struct Targets {
    std::vector<NodeId> tob;
    std::vector<NodeId> replicas;
  };
  std::vector<Targets> targets_;
  obs::Tracer* tracer_ = nullptr;
  mutable std::atomic<std::uint64_t> routed_{0};
  mutable std::atomic<std::uint64_t> cross_routed_{0};
};

}  // namespace shadow::core
