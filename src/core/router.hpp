// Keyspace partitioning across replication groups.
//
// A sharded deployment runs N independent consensus groups (see
// core/group.hpp); the router maps every transaction onto the groups that
// own its partition keys. Single-shard transactions are broadcast straight
// into their group's TOB; cross-shard transactions go to a coordinator group
// (the first participant) which drives a TOB-ordered two-phase commit
// (core/twopc.hpp).
//
// The BASE partition function is deliberately trivial — `key mod shards` —
// so that client-side routing stays a pure function of the request. Dynamic
// rebalancing (core/migrate.hpp) layers RangeOverrides on top: each replica
// holds a RoutingView (base + the overrides its group's delivery order has
// committed), and a group that receives a transaction it no longer owns
// forwards it to the owner. Clients keep routing by the base alone, which
// costs a moved key one extra hop forever but keeps client routing
// deterministic and the merged traces checkable offline.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "workload/messages.hpp"

namespace shadow::obs {
class Tracer;
}

namespace shadow::core {

/// Identifies one replication group (one TOB instance + its replica set).
using GroupId = std::uint32_t;

class ShardRouter {
 public:
  /// How a procedure's parameters map onto the partitioned keyspace.
  struct ProcInfo {
    std::string table;                    // lock/partition namespace
    std::vector<std::size_t> key_params;  // parameter indices holding keys
    /// Pure-read procedures take the lock-free versioned read path in
    /// sharded deployments (kRoBeginBit on the wire) instead of 2PC.
    bool read_only = false;
  };

  explicit ShardRouter(std::size_t shards);

  std::size_t shard_count() const { return shards_; }

  /// Stable, rebalance-free partition: key → group by modulo.
  GroupId shard_of_key(std::int64_t key) const {
    return static_cast<GroupId>(static_cast<std::uint64_t>(key) %
                                static_cast<std::uint64_t>(shards_));
  }

  /// Registers a procedure's partition-key layout. Procedures with no key
  /// parameters (full scans like bank.audit) and unregistered procedures pin
  /// to group 0.
  void register_proc(const std::string& proc, ProcInfo info);
  /// Registers the built-in bank + TPC-C layouts (bank: account params;
  /// TPC-C: the warehouse parameter — every TPC-C procedure is
  /// single-warehouse here, so TPC-C never crosses shards).
  void install_default_extractors();

  const ProcInfo* proc_info(const std::string& proc) const;
  /// The request's partition keys (empty for key-less procedures).
  std::vector<std::int64_t> keys_of(const workload::TxnRequest& req) const;
  /// Sorted, deduplicated participant groups (never empty; {0} for key-less).
  std::vector<GroupId> shards_of(const workload::TxnRequest& req) const;
  /// Participant groups for the read-only snapshot path: same as shards_of,
  /// except key-less procedures (full scans like bank.audit) fan out to
  /// EVERY group — each group serves its owned partition at the cut — where
  /// the write path pins them to group 0.
  std::vector<GroupId> ro_shards_of(const workload::TxnRequest& req) const;
  bool cross_shard(const workload::TxnRequest& req) const;
  /// True when the request's procedure is registered read-only (eligible for
  /// the versioned snapshot-read path; never acquires 2PC prepare locks).
  bool read_only(const workload::TxnRequest& req) const {
    const ProcInfo* info = proc_info(req.proc);
    return info != nullptr && info->read_only;
  }
  /// The group that owns a transaction end-to-end (single-shard) or drives
  /// its two-phase commit (cross-shard): the first participant group.
  GroupId coordinator_of(const workload::TxnRequest& req) const;

  /// Deployment wiring (filled by make_sharded_smr_cluster after the groups
  /// are built; replicas only consult targets at delivery time).
  void set_group_targets(GroupId g, std::vector<NodeId> tob, std::vector<NodeId> replicas);
  const std::vector<NodeId>& tob_targets(GroupId g) const;
  const std::vector<NodeId>& replica_targets(GroupId g) const;

  /// Client-side routing: the submission targets (coordinator group's TOB
  /// nodes) for this request. Counts `router.txns_total` / and, for
  /// cross-shard requests, `router.cross_shard` on the attached tracer.
  const std::vector<NodeId>& route(const workload::TxnRequest& req) const;

  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Routing statistics (mirrors the `router.*` counters; atomics because
  /// clients may route from multiple threads in a pipelined process).
  std::uint64_t routed_count() const { return routed_.load(std::memory_order_relaxed); }
  std::uint64_t cross_shard_count() const {
    return cross_routed_.load(std::memory_order_relaxed);
  }
  double cross_shard_ratio() const {
    const std::uint64_t total = routed_count();
    return total == 0 ? 0.0 : static_cast<double>(cross_shard_count()) / total;
  }

 private:
  std::size_t shards_;
  std::map<std::string, ProcInfo> procs_;
  struct Targets {
    std::vector<NodeId> tob;
    std::vector<NodeId> replicas;
  };
  std::vector<Targets> targets_;
  obs::Tracer* tracer_ = nullptr;
  mutable std::atomic<std::uint64_t> routed_{0};
  mutable std::atomic<std::uint64_t> cross_routed_{0};
};

/// One committed shard-rebalancing step (core/migrate.hpp): keys of `table`
/// in [lo, hi) that the view would otherwise place on `from` now live on
/// `to`. Overrides compose in install order, so a later migration can move a
/// sub-range onward.
struct RangeOverride {
  std::string table;
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  GroupId from = 0;
  GroupId to = 0;
};

/// A replica's current picture of the keyspace partition: the shared,
/// immutable base router plus the ordered overrides committed by
/// `::mig-commit` deliveries. The view is per-replica state advanced
/// deterministically by each group's own delivery order; clients never see
/// it (they route by the base and the owning group forwards). epoch() counts
/// installed overrides — 2PC prepares are stamped with the coordinator's
/// epoch so a participant whose partition picture differs can refuse the
/// plan (vote NO "xs-epoch-retry") instead of staging against stale
/// ownership.
class RoutingView {
 public:
  explicit RoutingView(const ShardRouter* base) : base_(base) {}

  const ShardRouter& base() const { return *base_; }
  std::size_t shard_count() const { return base_->shard_count(); }
  std::uint64_t epoch() const { return overrides_.size(); }
  const std::vector<RangeOverride>& overrides() const { return overrides_; }

  void install(RangeOverride o) { overrides_.push_back(std::move(o)); }
  void reset_overrides(std::vector<RangeOverride> o) { overrides_ = std::move(o); }

  /// Owner of one partition key, overrides applied in install order.
  GroupId shard_of(const std::string& table, std::int64_t key) const {
    GroupId g = base_->shard_of_key(key);
    for (const RangeOverride& o : overrides_) {
      if (g == o.from && o.table == table && key >= o.lo && key < o.hi) g = o.to;
    }
    return g;
  }

  const ShardRouter::ProcInfo* proc_info(const std::string& proc) const {
    return base_->proc_info(proc);
  }
  std::vector<std::int64_t> keys_of(const workload::TxnRequest& req) const {
    return base_->keys_of(req);
  }
  /// Sorted, deduplicated participant groups under the current overrides
  /// (never empty; {0} for key-less).
  std::vector<GroupId> shards_of(const workload::TxnRequest& req) const;
  bool cross_shard(const workload::TxnRequest& req) const { return shards_of(req).size() > 1; }
  bool read_only(const workload::TxnRequest& req) const { return base_->read_only(req); }

  const std::vector<NodeId>& tob_targets(GroupId g) const { return base_->tob_targets(g); }

 private:
  const ShardRouter* base_;
  std::vector<RangeOverride> overrides_;
};

}  // namespace shadow::core
