#include "consensus/two_third.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace shadow::consensus {

namespace {

constexpr const char* kDecideHeader = kTwoThirdDecideHeader;

}  // namespace

TwoThirdModule::TwoThirdModule(NodeId self, TwoThirdConfig config, SafetyRecorder* safety)
    : self_(self), config_(std::move(config)), safety_(safety) {
  SHADOW_REQUIRE_MSG(config_.peers.size() >= 4,
                     "One-Third-Rule requires n > 3f; use at least 4 peers for f=1");
  SHADOW_REQUIRE(std::find(config_.peers.begin(), config_.peers.end(), self_) !=
                 config_.peers.end());
}

void TwoThirdModule::propose(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
  Instance& inst = instances_[slot];
  if (inst.decision) return;
  if (safety_ != nullptr) safety_->on_propose(slot, batch.commands());
  if (!inst.estimate) {
    inst.estimate = batch;
    send_vote(ctx, slot, inst);
    // Votes that raced ahead of our proposal may already satisfy the round.
    try_advance(ctx, slot, inst);
  }
}

void TwoThirdModule::send_vote(net::NodeContext& ctx, Slot slot, Instance& inst) {
  SHADOW_CHECK(inst.estimate.has_value());
  const net::Message vote = net::make_msg(kVoteHeader, VoteBody{slot, inst.round, *inst.estimate});
  for (NodeId peer : config_.peers) {
    ctx.send(peer, vote);
  }
  inst.last_sent = ctx.now();
}

bool TwoThirdModule::on_message(net::NodeContext& ctx, const net::Message& msg) {
  if (msg.header == kVoteHeader) {
    const auto& vote = net::msg_body<VoteBody>(msg);
    config_.profile.charge(ctx, vote.batch.size());
    Instance& inst = instances_[vote.slot];
    if (inst.decision) {
      // A decided process answers votes with the decision so laggards learn.
      if (msg.from != self_) {
        ctx.send(msg.from, net::make_msg(kDecideHeader, DecideBody{vote.slot, *inst.decision}));
      }
      return true;
    }
    // Participate even without a local proposal: adopt the first estimate
    // seen (the fully symmetric protocol needs all correct processes voting).
    if (!inst.estimate) {
      inst.estimate = vote.batch;
      send_vote(ctx, vote.slot, inst);
    }
    inst.votes[vote.round][msg.from.value] = vote.batch;
    try_advance(ctx, vote.slot, inst);
    return true;
  }
  if (msg.header == kDecideHeader) {
    const auto& dec = net::msg_body<DecideBody>(msg);
    config_.profile.charge(ctx, dec.batch.size());
    Instance& inst = instances_[dec.slot];
    if (!inst.decision) decide(ctx, dec.slot, inst, dec.batch);
    return true;
  }
  return false;
}

void TwoThirdModule::try_advance(net::NodeContext& ctx, Slot slot, Instance& inst) {
  if (inst.decision || !inst.estimate) return;
  // Loop: a buffered future-round vote set may let us advance repeatedly.
  while (true) {
    const auto it = inst.votes.find(inst.round);
    if (it == inst.votes.end() || it->second.size() < threshold()) return;
    const std::map<std::uint32_t, EncodedBatch>& received = it->second;

    // Count value frequencies; track the smallest most-frequent value.
    // EncodedBatch orders by payload bytes: the codec is deterministic, so
    // every process breaks frequency ties the same way without decoding.
    std::map<EncodedBatch, std::size_t> freq;
    for (const auto& [peer, batch] : received) ++freq[batch];
    const EncodedBatch* best = nullptr;
    std::size_t best_count = 0;
    for (const auto& [batch, count] : freq) {
      if (count > best_count) {  // map iterates in value order: first max is smallest
        best = &batch;
        best_count = count;
      }
    }
    SHADOW_CHECK(best != nullptr);

    if (best_count >= threshold()) {
      decide(ctx, slot, inst, *best);
      return;
    }
    inst.estimate = *best;
    ++inst.round;
    if (config_.tracer) config_.tracer->round(ctx.now(), self_, slot, inst.round);
    send_vote(ctx, slot, inst);
  }
}

void TwoThirdModule::decide(net::NodeContext& ctx, Slot slot, Instance& inst,
                            const EncodedBatch& value) {
  inst.decision = value;
  if (safety_ != nullptr) safety_->on_decide(self_, slot, value.commands());
  const net::Message dec = net::make_msg(kDecideHeader, DecideBody{slot, value});
  for (NodeId peer : config_.peers) {
    if (peer != self_) ctx.send(peer, dec);
  }
  notify_decide(ctx, slot, value);
}

void TwoThirdModule::on_tick(net::NodeContext& ctx) {
  // Retransmit the current vote for stalled undecided instances. Crashed
  // peers never answer; retransmission covers proposals that raced with a
  // peer joining an instance.
  for (auto& [slot, inst] : instances_) {
    if (inst.decision || !inst.estimate) continue;
    if (ctx.now() - inst.last_sent >= config_.round_timeout) {
      send_vote(ctx, slot, inst);
    }
  }
}

}  // namespace shadow::consensus
