#include "consensus/safety.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace shadow::consensus {

void SafetyRecorder::on_propose(Slot slot, const Batch& batch) {
  proposed_[slot].push_back(batch);
}

void SafetyRecorder::on_decide(NodeId node, Slot slot, const Batch& batch) {
  ++decision_count_;
  // Integrity: at most one decision per (node, slot) — and it must be stable.
  auto key = std::make_pair(node.value, slot);
  auto [it, inserted] = decided_by_node_.try_emplace(key, batch);
  if (!inserted) {
    SHADOW_CHECK_MSG(it->second == batch,
                     "integrity violated: " + to_string(node) + " re-decided slot " +
                         std::to_string(slot) + " differently");
  }
  // Agreement (online): first decision for the slot fixes the value.
  auto [dit, dinserted] = decided_.try_emplace(slot, batch);
  if (!dinserted) {
    SHADOW_CHECK_MSG(dit->second == batch,
                     "agreement violated at slot " + std::to_string(slot) + ": " +
                         to_string(batch) + " vs " + to_string(dit->second));
  }
}

void SafetyRecorder::on_promise(NodeId acceptor, const Ballot& ballot) {
  auto [it, inserted] = promises_.try_emplace(acceptor.value, ballot);
  if (!inserted) {
    SHADOW_CHECK_MSG(!(ballot < it->second),
                     "promise monotonicity violated at acceptor " + to_string(acceptor) +
                         ": promised " + to_string(it->second) + " then " + to_string(ballot));
    it->second = ballot;
  }
}

void SafetyRecorder::on_accept(NodeId acceptor, const Ballot& ballot, Slot slot,
                               const Batch& batch) {
  // An acceptor only accepts at its current promise or above.
  if (auto it = promises_.find(acceptor.value); it != promises_.end()) {
    SHADOW_CHECK_MSG(!(ballot < it->second),
                     "accept below promise at acceptor " + to_string(acceptor));
  }
  // Per-acceptor accepted ballot for a slot never decreases.
  auto key = std::make_pair(acceptor.value, slot);
  auto [it, inserted] = last_accept_.try_emplace(key, ballot);
  if (!inserted) {
    SHADOW_CHECK_MSG(!(ballot < it->second), "acceptor accepted a lower ballot for a slot");
    it->second = ballot;
  }
  accepts_by_slot_[slot].emplace_back(ballot, batch);
}

loe::CheckResult SafetyRecorder::check_agreement() const {
  // Agreement is enforced online in on_decide; re-verify the aggregate here.
  for (const auto& [key, batch] : decided_by_node_) {
    auto it = decided_.find(key.second);
    if (it == decided_.end() || !(it->second == batch)) {
      return loe::CheckResult::fail("agreement violated at slot " + std::to_string(key.second));
    }
  }
  return loe::CheckResult::pass();
}

loe::CheckResult SafetyRecorder::check_validity() const {
  for (const auto& [slot, batch] : decided_) {
    auto it = proposed_.find(slot);
    if (it == proposed_.end()) {
      return loe::CheckResult::fail("slot " + std::to_string(slot) +
                                    " decided without any proposal");
    }
    // TwoThird merges proposals: a decided batch is valid when every command
    // in it appears in some proposal for the slot (no-creation), and a pure
    // Paxos decision is one of the proposed batches (a special case).
    for (const Command& cmd : batch) {
      const bool found = std::any_of(it->second.begin(), it->second.end(),
                                     [&cmd](const Batch& proposal) {
                                       return std::find(proposal.begin(), proposal.end(), cmd) !=
                                              proposal.end();
                                     });
      if (!found) {
        return loe::CheckResult::fail("validity violated at slot " + std::to_string(slot) +
                                      ": command " + to_string(cmd) + " was never proposed");
      }
    }
  }
  return loe::CheckResult::pass();
}

loe::CheckResult SafetyRecorder::check_integrity() const {
  // Enforced online; nothing further to verify at end of run.
  return loe::CheckResult::pass();
}

loe::CheckResult SafetyRecorder::check_chosen_stability(std::size_t quorum) const {
  for (const auto& [slot, accepts] : accepts_by_slot_) {
    // Find the earliest ballot with quorum acceptances.
    std::map<Ballot, std::size_t> count;
    std::map<Ballot, Batch> value;
    for (const auto& [ballot, batch] : accepts) {
      ++count[ballot];
      value[ballot] = batch;
    }
    const Ballot* chosen = nullptr;
    for (const auto& [ballot, n] : count) {
      if (n >= quorum) {
        chosen = &ballot;
        break;
      }
    }
    if (chosen == nullptr) continue;
    for (const auto& [ballot, batch] : accepts) {
      if (*chosen < ballot && !(batch == value[*chosen])) {
        std::ostringstream os;
        os << "chosen-value stability violated at slot " << slot << ": ballot "
           << to_string(ballot) << " accepted a different batch after " << to_string(*chosen)
           << " was chosen";
        return loe::CheckResult::fail(os.str());
      }
    }
  }
  return loe::CheckResult::pass();
}

}  // namespace shadow::consensus
