// Multi-decree Paxos Synod, after "Paxos Made Moderately Complex" (the
// paper's reference [20] — the informal specification its EventML Synod was
// developed from).
//
// Every participant co-locates three roles, exactly as the paper deploys the
// broadcast service on three machines:
//   acceptor   — promise/accept state, the only durable state of the synod;
//   leader     — owns a ballot; runs one scout (phase 1) and per-slot
//                commanders (phase 2); activates on adoption, deactivates on
//                preemption;
//   learner    — collects decisions and surfaces them via notify_decide.
//
// Safety hooks feed the SafetyRecorder: promise monotonicity (the invariant
// whose violation was the Google Paxos disk-corruption bug discussed in
// Sec. II-D), accept-above-promise, agreement, validity and chosen-value
// stability are all machine-checked per execution.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/module.hpp"

namespace shadow::obs {
class Tracer;
}  // namespace shadow::obs

namespace shadow::consensus {

/// Synod message headers.
inline constexpr const char* kP1aHeader = "px-p1a";
inline constexpr const char* kP1bHeader = "px-p1b";
inline constexpr const char* kP2aHeader = "px-p2a";
inline constexpr const char* kP2bHeader = "px-p2b";
inline constexpr const char* kDecisionHeader = "px-decision";
inline constexpr const char* kProposeHeader = "px-propose";

/// Synod message bodies (public so the wire round-trip suite can cover them).
struct P1aBody {
  Ballot ballot;
};
struct P1bBody {
  Ballot scout_ballot;           // the ballot this p1b answers
  Ballot promised;               // acceptor's current promise
  std::vector<PValue> accepted;  // acceptor's accepted pvalues
};
struct P2aBody {
  PValue pvalue;
};
struct P2bBody {
  Ballot commander_ballot;  // the ballot this p2b answers
  Ballot promised;
  Slot slot = 0;
};
struct DecisionBody {
  Slot slot = 0;
  EncodedBatch batch;
};
struct ProposeBody {
  Slot slot = 0;
  EncodedBatch batch;
};

struct PaxosConfig {
  std::vector<NodeId> peers;  // the synod participants (majority quorums)
  // Batched commands only add a small scan per item to a synod message walk.
  ExecProfile profile{.program_work = kSynodProgramWork, .cmd_walk_fraction = 0.02};
  net::Time leader_timeout = 50000;   // 50 ms without progress → suspect leader
  net::Time scout_retry = 30000;      // backoff before re-running phase 1
  /// Silence period after which an in-flight scout's 1a / commander's 2a is
  /// re-sent to the acceptors not yet heard from. Acceptors are pure
  /// responders, so retransmission is idempotent; without it one dropped
  /// message (lossy link, crashed-then-silent peer) wedges the ballot.
  net::Time retransmit_timeout = 100000;
  obs::Tracer* tracer = nullptr;      // optional structured trace recorder
};

class PaxosModule final : public ConsensusModule {
 public:
  PaxosModule(NodeId self, PaxosConfig config, SafetyRecorder* safety = nullptr);

  void propose(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) override;
  bool on_message(net::NodeContext& ctx, const net::Message& msg) override;
  void on_tick(net::NodeContext& ctx) override;

  /// The owner of the highest ballot this node has promised — the best
  /// guess at who can get values chosen without a ballot fight.
  std::optional<NodeId> proposer_hint() const override {
    if (leader_.active) return self_;
    if (acceptor_.promised.round == 0) return std::nullopt;  // no leader yet
    return acceptor_.promised.leader;
  }

  /// True while this node believes it owns the active ballot.
  bool is_active_leader() const { return leader_.active; }
  const Ballot& current_ballot() const { return leader_.ballot; }

 private:
  // -- acceptor role ----------------------------------------------------------
  struct Acceptor {
    Ballot promised;                 // highest ballot promised
    std::map<Slot, PValue> accepted; // highest accepted pvalue per slot
  };

  // -- leader role ------------------------------------------------------------
  struct Scout {
    Ballot ballot;
    std::set<std::uint32_t> waitfor;          // acceptors not yet heard from
    std::map<Slot, PValue> pvalues;           // pmax accumulator
    net::Time last_sent = 0;                  // for 1a retransmission
  };
  struct Commander {
    Ballot ballot;
    Slot slot = 0;
    EncodedBatch batch;  // the original encoded bytes, spliced into every 2a
    std::set<std::uint32_t> waitfor;
    net::Time last_sent = 0;                  // for 2a retransmission
  };
  struct Leader {
    Ballot ballot;
    bool active = false;
    // Proposals keep the received sub-frame: a re-proposal after adoption
    // (leader change) splices the same bytes the old leader sent.
    std::map<Slot, EncodedBatch> proposals;
    std::optional<Scout> scout;
    std::map<Slot, Commander> commanders;  // one in-flight commander per slot
  };

  void start_scout(net::NodeContext& ctx);
  void start_commander(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch);
  void preempted(net::NodeContext& ctx, const Ballot& by);
  void learn(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch);
  std::size_t quorum() const { return config_.peers.size() / 2 + 1; }

  NodeId self_;
  PaxosConfig config_;
  SafetyRecorder* safety_;
  Acceptor acceptor_;
  Leader leader_;
  std::map<Slot, EncodedBatch> learned_;
  std::uint64_t max_round_seen_ = 0;
  net::Time last_progress_ = 0;
  net::Time pending_since_ = 0;  // when the oldest currently-pending work arrived
  net::Time last_scout_attempt_ = 0;
};

}  // namespace shadow::consensus

namespace shadow::wire {

template <>
struct Codec<consensus::P1aBody> {
  static void encode(BytesWriter& w, const consensus::P1aBody& v) {
    Codec<consensus::Ballot>::encode(w, v.ballot);
  }
  static consensus::P1aBody decode(BytesReader& r) {
    return {Codec<consensus::Ballot>::decode(r)};
  }
};

template <>
struct Codec<consensus::P1bBody> {
  static void encode(BytesWriter& w, const consensus::P1bBody& v) {
    Codec<consensus::Ballot>::encode(w, v.scout_ballot);
    Codec<consensus::Ballot>::encode(w, v.promised);
    Codec<std::vector<consensus::PValue>>::encode(w, v.accepted);
  }
  static consensus::P1bBody decode(BytesReader& r) {
    consensus::P1bBody v;
    v.scout_ballot = Codec<consensus::Ballot>::decode(r);
    v.promised = Codec<consensus::Ballot>::decode(r);
    v.accepted = Codec<std::vector<consensus::PValue>>::decode(r);
    return v;
  }
};

template <>
struct Codec<consensus::P2aBody> {
  static void encode(BytesWriter& w, const consensus::P2aBody& v) {
    Codec<consensus::PValue>::encode(w, v.pvalue);
  }
  static consensus::P2aBody decode(BytesReader& r) {
    return {Codec<consensus::PValue>::decode(r)};
  }
};

template <>
struct Codec<consensus::P2bBody> {
  static void encode(BytesWriter& w, const consensus::P2bBody& v) {
    Codec<consensus::Ballot>::encode(w, v.commander_ballot);
    Codec<consensus::Ballot>::encode(w, v.promised);
    w.u64(v.slot);
  }
  static consensus::P2bBody decode(BytesReader& r) {
    consensus::P2bBody v;
    v.commander_ballot = Codec<consensus::Ballot>::decode(r);
    v.promised = Codec<consensus::Ballot>::decode(r);
    v.slot = r.u64();
    return v;
  }
};

template <>
struct Codec<consensus::DecisionBody> {
  static void encode(BytesWriter& w, const consensus::DecisionBody& v) {
    w.u64(v.slot);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static consensus::DecisionBody decode(BytesReader& r) {
    consensus::DecisionBody v;
    v.slot = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

template <>
struct Codec<consensus::ProposeBody> {
  static void encode(BytesWriter& w, const consensus::ProposeBody& v) {
    w.u64(v.slot);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static consensus::ProposeBody decode(BytesReader& r) {
    consensus::ProposeBody v;
    v.slot = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
