// Runtime-verified consensus safety properties.
//
// The paper proves the safety of TwoThird consensus and the Paxos Synod in
// Nuprl. Our substitution (DESIGN.md §2) checks the same properties on every
// simulated execution, including failure-injected ones:
//
//   agreement          — no two processes decide differently for a slot;
//   validity           — every decided value was proposed for that slot;
//   integrity          — a process decides a slot at most once;
//   promise monotonic  — an acceptor's promised ballot never decreases
//                        (the Google disk-corruption bug of §II.D is exactly
//                        a violation of this invariant);
//   accept safety      — an acceptor only accepts ballots >= its promise.
//
// Protocol implementations call the on_* hooks; hooks throw immediately on
// an online-checkable violation, and the check_* methods verify the global
// properties at the end of a run.
#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "consensus/types.hpp"
#include "loe/properties.hpp"

namespace shadow::consensus {

class SafetyRecorder {
 public:
  // -- instrumentation hooks -------------------------------------------------
  void on_propose(Slot slot, const Batch& batch);
  void on_decide(NodeId node, Slot slot, const Batch& batch);
  void on_promise(NodeId acceptor, const Ballot& ballot);
  void on_accept(NodeId acceptor, const Ballot& ballot, Slot slot, const Batch& batch);

  // -- end-of-run property checks ---------------------------------------------
  loe::CheckResult check_agreement() const;
  loe::CheckResult check_validity() const;
  loe::CheckResult check_integrity() const;

  /// Chosen-value stability: once a quorum of acceptors has accepted a
  /// ballot b for slot s, every later accepted ballot for s carries the
  /// same batch. Requires `quorum` (majority size).
  loe::CheckResult check_chosen_stability(std::size_t quorum) const;

  std::size_t decisions() const { return decision_count_; }
  const std::map<Slot, Batch>& decided() const { return decided_; }

 private:
  std::map<Slot, std::vector<Batch>> proposed_;
  std::map<Slot, Batch> decided_;
  std::map<std::pair<std::uint32_t, Slot>, Batch> decided_by_node_;  // integrity
  std::unordered_map<std::uint32_t, Ballot> promises_;
  std::map<Slot, std::vector<std::pair<Ballot, Batch>>> accepts_by_slot_;
  std::map<std::pair<std::uint32_t, Slot>, Ballot> last_accept_;
  std::size_t decision_count_ = 0;
  mutable std::vector<std::string> violations_;
};

}  // namespace shadow::consensus
