// The consensus-module interface the total order broadcast service builds
// on. The paper's broadcast service "is able to switch between protocols for
// different messages"; both TwoThirdModule and PaxosModule implement this
// interface, and the TOB node instantiates whichever the configuration
// selects.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "consensus/exec_profile.hpp"
#include "consensus/safety.hpp"
#include "consensus/types.hpp"
#include "net/transport.hpp"

namespace shadow::consensus {

class ConsensusModule {
 public:
  /// Decisions carry the batch in its encoded sub-frame form: the bytes are
  /// the ones that travelled (zero-copy), and `.commands()` decodes on
  /// demand (memoized).
  using DecideFn = std::function<void(net::NodeContext&, Slot, const EncodedBatch&)>;

  virtual ~ConsensusModule() = default;

  /// Propose `batch` for `slot` on behalf of this node. The batch is already
  /// encoded; the module splices its bytes into every message that carries
  /// it (propose forward, 2a, vote, re-proposal, decision).
  virtual void propose(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) = 0;

  /// Offers an incoming message; returns true if consumed.
  virtual bool on_message(net::NodeContext& ctx, const net::Message& msg) = 0;

  /// Periodic driver for round/ballot timeouts and retransmissions.
  virtual void on_tick(net::NodeContext& ctx) = 0;

  /// Best proposer for new values, if the protocol has one (Paxos: the
  /// current leader; leaderless protocols return nullopt). The broadcast
  /// service forwards pending commands there instead of racing proposals
  /// for the same slot.
  virtual std::optional<NodeId> proposer_hint() const { return std::nullopt; }

  /// Called (at most once per slot per node) when a slot's value is learned.
  void set_on_decide(DecideFn fn) { on_decide_ = std::move(fn); }

 protected:
  void notify_decide(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
    if (on_decide_) on_decide_(ctx, slot, batch);
  }

  DecideFn on_decide_;
};

}  // namespace shadow::consensus
