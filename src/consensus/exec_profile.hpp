// Work accounting for the generated-code components.
//
// The consensus modules and the broadcast service correspond to generated
// GPM programs in the paper (Table I gives their sizes in Nuprl AST nodes).
// Handling one message tree-walks the program once, plus a fraction of a
// walk per batched command it touches, so the abstract work of one handler
// execution is proportional to program size — exactly the quantity the tier
// cost model (gpm/tier.hpp) prices differently for the interpreted /
// interpreted-optimized / compiled runs of Fig. 8. Calibration of the cost
// coefficients against §IV.A's endpoints is documented in EXPERIMENTS.md.
#pragma once

#include <cstdint>

#include "gpm/tier.hpp"
#include "net/transport.hpp"

namespace shadow::consensus {

/// Program sizes in GPM AST nodes, from the paper's Table I.
inline constexpr std::uint64_t kTwoThirdProgramWork = 1343;
inline constexpr std::uint64_t kSynodProgramWork = 2625;
inline constexpr std::uint64_t kBroadcastProgramWork = 1352;

/// Fraction of work remaining after the Nuprl program optimizer runs
/// (matches eventml::OptimizerConfig::fusion_gain).
inline constexpr double kOptimizedWorkFraction = 0.62;

struct ExecProfile {
  gpm::ExecutionTier tier = gpm::ExecutionTier::kCompiled;
  gpm::CostModel costs{};
  std::uint64_t program_work = kSynodProgramWork;  // per-message program walk
  /// Extra walks per batched command, as a fraction of one program walk.
  /// The broadcast frontend touches each command individually (fraction 1);
  /// consensus messages only scan the batch (small fraction).
  double cmd_walk_fraction = 0.08;

  /// Effective program size for the tier (optimized program is smaller).
  std::uint64_t effective_program() const {
    return tier == gpm::ExecutionTier::kInterpreted
               ? program_work
               : static_cast<std::uint64_t>(static_cast<double>(program_work) *
                                            kOptimizedWorkFraction);
  }

  /// Work of one handler execution over a batch of `items` commands.
  std::uint64_t work(std::size_t items = 0) const {
    const std::uint64_t eff = effective_program();
    return eff + static_cast<std::uint64_t>(static_cast<double>(eff) * cmd_walk_fraction *
                                            static_cast<double>(items));
  }

  /// Charges the virtual CPU for one handler execution.
  void charge(net::NodeContext& ctx, std::size_t items = 0) const {
    ctx.charge(costs.cost_us(tier, work(items)));
  }

  /// Fraction of a program walk a small control message (p1a/p2b/ack)
  /// triggers: the recognizer structure is walked but the heavy handler
  /// bodies are not.
  static constexpr double kControlFraction = 0.35;

  void charge_control(net::NodeContext& ctx) const {
    ctx.charge(costs.cost_us(
        tier, static_cast<std::uint64_t>(static_cast<double>(effective_program()) *
                                         kControlFraction)));
  }
};

}  // namespace shadow::consensus
