// TwoThird consensus — the paper's leaderless, round-based, fully symmetric
// consensus protocol, based on the One-Third-Rule algorithm of the Heard-Of
// model (Charron-Bost & Schiper). Tolerates f < n/3 crash failures.
//
// Per round every process sends its estimate to all. When a process has
// received estimates from more than 2n/3 processes in its current round it
//   - decides v if more than 2n/3 of *all* processes sent v, and
//   - otherwise adopts the smallest most-frequently-received value and
//     advances to the next round.
// Decisions are broadcast so lagging processes learn them, and a decided
// process answers later-round votes with the decision.
//
// Safety (agreement, validity, integrity) is checked on every execution by
// the SafetyRecorder; the original deadlock the authors found by inspection
// (Sec. II-D) is covered by the liveness tests in tests/consensus.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "consensus/module.hpp"

namespace shadow::obs {
class Tracer;
}  // namespace shadow::obs

namespace shadow::consensus {

/// TwoThird message headers.
inline constexpr const char* kVoteHeader = "2/3-vote";
inline constexpr const char* kTwoThirdDecideHeader = "2/3-decide";

/// TwoThird message bodies.
struct VoteBody {
  Slot slot = 0;
  std::uint64_t round = 0;
  EncodedBatch batch;
};
struct DecideBody {
  Slot slot = 0;
  EncodedBatch batch;
};

struct TwoThirdConfig {
  std::vector<NodeId> peers;  // all participants; needs |peers| > 3f
  ExecProfile profile{.program_work = kTwoThirdProgramWork};
  net::Time round_timeout = 20000;  // 20 ms retransmission period
  obs::Tracer* tracer = nullptr;    // optional structured trace recorder
};

class TwoThirdModule final : public ConsensusModule {
 public:
  TwoThirdModule(NodeId self, TwoThirdConfig config, SafetyRecorder* safety = nullptr);

  void propose(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) override;
  bool on_message(net::NodeContext& ctx, const net::Message& msg) override;
  void on_tick(net::NodeContext& ctx) override;

  /// The number of crash failures the configuration tolerates.
  std::size_t tolerated_failures() const { return (config_.peers.size() - 1) / 3; }

 private:
  struct Instance {
    std::uint64_t round = 0;
    std::optional<EncodedBatch> estimate;
    // votes[round][peer index] = batch (in encoded sub-frame form: adopting
    // or re-voting a received estimate splices the original bytes)
    std::map<std::uint64_t, std::map<std::uint32_t, EncodedBatch>> votes;
    std::optional<EncodedBatch> decision;
    net::Time last_sent = 0;
  };

  void send_vote(net::NodeContext& ctx, Slot slot, Instance& inst);
  void try_advance(net::NodeContext& ctx, Slot slot, Instance& inst);
  void decide(net::NodeContext& ctx, Slot slot, Instance& inst, const EncodedBatch& value);
  std::size_t threshold() const {  // strictly more than 2n/3
    return 2 * config_.peers.size() / 3 + 1;
  }

  NodeId self_;
  TwoThirdConfig config_;
  SafetyRecorder* safety_;
  std::map<Slot, Instance> instances_;
};

}  // namespace shadow::consensus

namespace shadow::wire {

template <>
struct Codec<consensus::VoteBody> {
  static void encode(BytesWriter& w, const consensus::VoteBody& v) {
    w.u64(v.slot);
    w.u64(v.round);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static consensus::VoteBody decode(BytesReader& r) {
    consensus::VoteBody v;
    v.slot = r.u64();
    v.round = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

template <>
struct Codec<consensus::DecideBody> {
  static void encode(BytesWriter& w, const consensus::DecideBody& v) {
    w.u64(v.slot);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static consensus::DecideBody decode(BytesReader& r) {
    consensus::DecideBody v;
    v.slot = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
