// Shared types for the consensus modules and the total order broadcast
// service: commands, batches (one batch is decided per consensus instance /
// slot), and Paxos ballots.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "wire/codec.hpp"

namespace shadow::consensus {

/// One client message to be totally ordered. `payload` is opaque to the
/// broadcast service (ShadowDB puts serialized transactions in it).
struct Command {
  ClientId client{};
  RequestSeq seq = 0;
  std::string payload;

  auto operator<=>(const Command&) const = default;
};

/// The value decided per slot: a batch of commands (the paper's batching —
/// "multiple messages can be bundled in one Paxos proposal").
using Batch = std::vector<Command>;

/// A Paxos ballot: totally ordered, tied to the leader that owns it.
struct Ballot {
  std::uint64_t round = 0;
  NodeId leader{};

  auto operator<=>(const Ballot&) const = default;
};

/// A pvalue (PMMC): the triple an acceptor accepts.
struct PValue {
  Ballot ballot;
  Slot slot = 0;
  Batch batch;
};

inline std::string to_string(const Ballot& b) {
  return "(" + std::to_string(b.round) + "," + to_string(b.leader) + ")";
}

inline std::string to_string(const Command& c) {
  return to_string(c.client) + "#" + std::to_string(c.seq);
}

inline std::string to_string(const Batch& b) {
  std::string s = "[";
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i > 0) s += " ";
    s += to_string(b[i]);
  }
  return s + "]";
}

}  // namespace shadow::consensus

// Wire codecs: exact encoded sizes replace the old batch_wire_size estimate.
namespace shadow::wire {

template <>
struct Codec<consensus::Command> {
  static void encode(BytesWriter& w, const consensus::Command& v) {
    w.u32(v.client.value);
    w.u64(v.seq);
    w.str(v.payload);
  }
  static consensus::Command decode(BytesReader& r) {
    consensus::Command v;
    v.client = ClientId{r.u32()};
    v.seq = r.u64();
    v.payload = r.str();
    return v;
  }
};

template <>
struct Codec<consensus::Ballot> {
  static void encode(BytesWriter& w, const consensus::Ballot& v) {
    w.u64(v.round);
    w.u32(v.leader.value);
  }
  static consensus::Ballot decode(BytesReader& r) {
    consensus::Ballot v;
    v.round = r.u64();
    v.leader = NodeId{r.u32()};
    return v;
  }
};

template <>
struct Codec<consensus::PValue> {
  static void encode(BytesWriter& w, const consensus::PValue& v) {
    Codec<consensus::Ballot>::encode(w, v.ballot);
    w.u64(v.slot);
    Codec<consensus::Batch>::encode(w, v.batch);
  }
  static consensus::PValue decode(BytesReader& r) {
    consensus::PValue v;
    v.ballot = Codec<consensus::Ballot>::decode(r);
    v.slot = r.u64();
    v.batch = Codec<consensus::Batch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
