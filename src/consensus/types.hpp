// Shared types for the consensus modules and the total order broadcast
// service: commands, batches (one batch is decided per consensus instance /
// slot), and Paxos ballots.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace shadow::consensus {

/// One client message to be totally ordered. `payload` is opaque to the
/// broadcast service (ShadowDB puts serialized transactions in it).
struct Command {
  ClientId client{};
  RequestSeq seq = 0;
  std::string payload;

  auto operator<=>(const Command&) const = default;
};

/// The value decided per slot: a batch of commands (the paper's batching —
/// "multiple messages can be bundled in one Paxos proposal").
using Batch = std::vector<Command>;

/// A Paxos ballot: totally ordered, tied to the leader that owns it.
struct Ballot {
  std::uint64_t round = 0;
  NodeId leader{};

  auto operator<=>(const Ballot&) const = default;
};

/// A pvalue (PMMC): the triple an acceptor accepts.
struct PValue {
  Ballot ballot;
  Slot slot = 0;
  Batch batch;
};

inline std::string to_string(const Ballot& b) {
  return "(" + std::to_string(b.round) + "," + to_string(b.leader) + ")";
}

inline std::string to_string(const Command& c) {
  return to_string(c.client) + "#" + std::to_string(c.seq);
}

inline std::string to_string(const Batch& b) {
  std::string s = "[";
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i > 0) s += " ";
    s += to_string(b[i]);
  }
  return s + "]";
}

/// Estimated wire size of a batch, for the network bandwidth model.
inline std::size_t batch_wire_size(const Batch& b) {
  return std::accumulate(b.begin(), b.end(), std::size_t{16},
                         [](std::size_t n, const Command& c) { return n + 16 + c.payload.size(); });
}

}  // namespace shadow::consensus
