// Shared types for the consensus modules and the total order broadcast
// service: commands, batches (one batch is decided per consensus instance /
// slot), Paxos ballots, and the zero-copy EncodedBatch sub-frame that lets a
// batch be serialized exactly once per lifetime.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "wire/codec.hpp"
#include "wire/encoded_view.hpp"

namespace shadow::consensus {

/// One client message to be totally ordered. `payload` is opaque to the
/// broadcast service (ShadowDB puts serialized transactions in it).
struct Command {
  ClientId client{};
  RequestSeq seq = 0;
  std::string payload;

  auto operator<=>(const Command&) const = default;
};

/// The decoded form of a decided value: a batch of commands (the paper's
/// batching — "multiple messages can be bundled in one Paxos proposal").
using Batch = std::vector<Command>;

/// A Paxos ballot: totally ordered, tied to the leader that owns it.
struct Ballot {
  std::uint64_t round = 0;
  NodeId leader{};

  auto operator<=>(const Ballot&) const = default;
};

inline std::string to_string(const Ballot& b) {
  return "(" + std::to_string(b.round) + "," + to_string(b.leader) + ")";
}

inline std::string to_string(const Command& c) {
  return to_string(c.client) + "#" + std::to_string(c.seq);
}

inline std::string to_string(const Batch& b) {
  std::string s = "[";
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i > 0) s += " ";
    s += to_string(b[i]);
  }
  return s + "]";
}

}  // namespace shadow::consensus

namespace shadow::wire {

template <>
struct Codec<consensus::Command> {
  static void encode(BytesWriter& w, const consensus::Command& v) {
    w.u32(v.client.value);
    w.u64(v.seq);
    w.str(v.payload);
  }
  static consensus::Command decode(BytesReader& r) {
    consensus::Command v;
    v.client = ClientId{r.u32()};
    v.seq = r.u64();
    v.payload = r.str();
    return v;
  }
};

template <>
struct Codec<consensus::Ballot> {
  static void encode(BytesWriter& w, const consensus::Ballot& v) {
    w.u64(v.round);
    w.u32(v.leader.value);
  }
  static consensus::Ballot decode(BytesReader& r) {
    consensus::Ballot v;
    v.round = r.u64();
    v.leader = NodeId{r.u32()};
    return v;
  }
};

}  // namespace shadow::wire

namespace shadow::consensus {

/// A batch serialized exactly once, travelling thereafter as an immutable,
/// ref-counted encoded sub-frame. Every carrier of a batch (Paxos propose /
/// 2a / 1b re-proposals / decisions, TwoThird votes, tob relay and deliver)
/// holds one of these: re-framing a received batch splices the original
/// bytes by reference instead of re-encoding, and the decoded commands are
/// materialized on demand (memoized — a decode, never a second encode).
///
/// The payload is the command region only; the count travels alongside it
/// (the sub-frame wire form is `[count u32][payload_len u32][payload]`), so
/// size() never has to touch the bytes. Content equality and ordering are by
/// payload bytes: the codec is deterministic, so byte equality is command
/// equality, and the byte order gives TwoThird's vote-frequency map a total
/// order without decoding anything.
class EncodedBatch {
 public:
  /// The empty batch (no rep, no bytes).
  EncodedBatch() = default;

  /// THE one encode of a batch's lifetime: serializes the commands into a
  /// fresh shared buffer and caches the decoded form. Counted in
  /// wire::batch_stats().batch_encodes.
  explicit EncodedBatch(Batch commands) {
    if (commands.empty()) return;
    BytesWriter w;
    for (const Command& c : commands) wire::Codec<Command>::encode(w, c);
    ++splice_stats().batch_encodes;
    auto rep = std::make_shared<Rep>();
    rep->count = static_cast<std::uint32_t>(commands.size());
    rep->payload = w.take_segments();
    rep->commands = std::move(commands);
    rep_ = std::move(rep);
  }

  /// Wraps an already-encoded command region (a received sub-frame or a
  /// BatchBuilder result). Not an encode: the bytes already exist.
  static EncodedBatch from_wire(std::uint32_t count, wire::SegmentedBytes payload) {
    EncodedBatch b;
    if (count == 0) {
      SHADOW_CHECK_MSG(payload.empty(), "empty batch with non-empty payload");
      return b;
    }
    SHADOW_CHECK_MSG(!payload.empty(), "non-empty batch with empty payload");
    auto rep = std::make_shared<Rep>();
    rep->count = count;
    rep->payload = std::move(payload);
    b.rep_ = std::move(rep);
    return b;
  }

  std::uint32_t size() const { return rep_ ? rep_->count : 0; }
  bool empty() const { return rep_ == nullptr; }

  /// The encoded command region (no count prefix), shared by reference.
  const wire::SegmentedBytes& payload() const {
    static const wire::SegmentedBytes kEmpty;
    return rep_ ? rep_->payload : kEmpty;
  }
  std::size_t payload_size() const { return rep_ ? rep_->payload.size() : 0; }

  /// The decoded commands, memoized on first use. (Mutation of the memo
  /// through a shared rep is safe: handlers run on single-threaded event
  /// loops, and the decode is idempotent. When a batch is about to cross a
  /// pipeline thread boundary, the sending thread must call commands() once
  /// BEFORE publishing — decode-before-publish — so the receiving thread
  /// only ever reads the memo; the core::ExecutorPipeline does exactly
  /// that, and the SPSC ring's mutex hand-off publishes the write.)
  const Batch& commands() const {
    static const Batch kEmpty;
    if (!rep_) return kEmpty;
    if (!rep_->commands.has_value()) {
      BytesReader r(rep_->payload);
      Batch out;
      // Do not trust the count for the allocation (it may have arrived off
      // the wire); commands consume at least one byte each, so truncation
      // throws before OOM.
      out.reserve(std::min<std::size_t>(rep_->count, rep_->payload.size()));
      for (std::uint32_t i = 0; i < rep_->count; ++i) {
        out.push_back(wire::Codec<Command>::decode(r));
      }
      SHADOW_CHECK_MSG(r.done(), "trailing bytes after batch payload decode");
      rep_->commands = std::move(out);
    }
    return *rep_->commands;
  }

  bool operator==(const EncodedBatch& other) const { return payload() == other.payload(); }
  std::strong_ordering operator<=>(const EncodedBatch& other) const {
    return payload() <=> other.payload();
  }

 private:
  struct Rep {
    std::uint32_t count = 0;
    wire::SegmentedBytes payload;
    mutable std::optional<Batch> commands;  // memoized decode
  };
  std::shared_ptr<const Rep> rep_;
};

/// Merges pre-encoded batches and fresh commands into one EncodedBatch:
/// spliced inputs ride along by reference (counted as splices), fresh
/// commands are serialized once (counted as a single encode per build). This
/// is how tob's leader folds relayed sub-frames and local commands into one
/// proposal without re-encoding the relayed bytes.
class BatchBuilder {
 public:
  void add(const Command& cmd) {
    wire::Codec<Command>::encode(w_, cmd);
    ++count_;
    fresh_ = true;
  }

  void add(const EncodedBatch& batch) {
    if (batch.empty()) return;
    w_.splice(batch.payload());
    count_ += batch.size();
  }

  bool empty() const { return count_ == 0; }
  std::uint32_t size() const { return count_; }

  EncodedBatch build() {
    if (fresh_) ++splice_stats().batch_encodes;
    return EncodedBatch::from_wire(count_, w_.take_segments());
  }

 private:
  BytesWriter w_;
  std::uint32_t count_ = 0;
  bool fresh_ = false;
};

/// A pvalue (PMMC): the triple an acceptor accepts.
struct PValue {
  Ballot ballot;
  Slot slot = 0;
  EncodedBatch batch;
};

inline std::string to_string(const EncodedBatch& b) {
  return to_string(b.commands());
}

}  // namespace shadow::consensus

namespace shadow::wire {

/// The sub-frame protocol: `[count u32][payload_len u32][payload bytes]`.
/// Encoding splices the payload by reference (zero-copy); decoding takes the
/// payload as views sharing the received frame's buffer, so the batch can be
/// re-framed later — relay, re-propose, deliver — without ever re-encoding.
template <>
struct Codec<consensus::EncodedBatch> {
  static void encode(BytesWriter& w, const consensus::EncodedBatch& v) {
    w.u32(v.size());
    w.u32(static_cast<std::uint32_t>(v.payload_size()));
    w.splice(v.payload());
  }
  static consensus::EncodedBatch decode(BytesReader& r) {
    const std::uint32_t count = r.u32();
    const std::uint32_t len = r.u32();
    return consensus::EncodedBatch::from_wire(count, r.take_segments(len));
  }
};

template <>
struct Codec<consensus::PValue> {
  static void encode(BytesWriter& w, const consensus::PValue& v) {
    Codec<consensus::Ballot>::encode(w, v.ballot);
    w.u64(v.slot);
    Codec<consensus::EncodedBatch>::encode(w, v.batch);
  }
  static consensus::PValue decode(BytesReader& r) {
    consensus::PValue v;
    v.ballot = Codec<consensus::Ballot>::decode(r);
    v.slot = r.u64();
    v.batch = Codec<consensus::EncodedBatch>::decode(r);
    return v;
  }
};

}  // namespace shadow::wire
