#include "consensus/paxos.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace shadow::consensus {

namespace {

constexpr const char* kP1a = kP1aHeader;
constexpr const char* kP1b = kP1bHeader;
constexpr const char* kP2a = kP2aHeader;
constexpr const char* kP2b = kP2bHeader;
constexpr const char* kDecision = kDecisionHeader;
constexpr const char* kPropose = kProposeHeader;

}  // namespace

PaxosModule::PaxosModule(NodeId self, PaxosConfig config, SafetyRecorder* safety)
    : self_(self), config_(std::move(config)), safety_(safety) {
  SHADOW_REQUIRE_MSG(config_.peers.size() >= 3, "Paxos needs at least 3 peers for f=1");
  SHADOW_REQUIRE(std::find(config_.peers.begin(), config_.peers.end(), self_) !=
                 config_.peers.end());
  leader_.ballot = Ballot{0, self_};
}

void PaxosModule::propose(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
  if (safety_ != nullptr) safety_->on_propose(slot, batch.commands());
  const net::Message msg = net::make_msg(kPropose, ProposeBody{slot, batch});
  for (NodeId peer : config_.peers) {
    ctx.send(peer, msg);
  }
}

bool PaxosModule::on_message(net::NodeContext& ctx, const net::Message& msg) {
  // ---- leader role: a replica hands us a proposal -------------------------
  if (msg.header == kPropose) {
    const auto& body = net::msg_body<ProposeBody>(msg);
    config_.profile.charge(ctx, body.batch.size());
    if (auto learned_it = learned_.find(body.slot); learned_it != learned_.end()) {
      // Already decided: help the proposer catch up.
      ctx.send(msg.from, net::make_msg(kDecision, DecisionBody{body.slot, learned_it->second}));
      return true;
    }
    const bool had_pending = std::any_of(
        leader_.proposals.begin(), leader_.proposals.end(),
        [this](const auto& kv) { return learned_.count(kv.first) == 0; });
    auto [it, inserted] = leader_.proposals.try_emplace(body.slot, body.batch);
    if (inserted && !had_pending) pending_since_ = ctx.now();
    if (inserted && leader_.active) start_commander(ctx, body.slot, it->second);
    return true;
  }

  // ---- acceptor role -------------------------------------------------------
  if (msg.header == kP1a) {
    const auto& body = net::msg_body<P1aBody>(msg);
    config_.profile.charge_control(ctx);
    if (acceptor_.promised < body.ballot) {
      acceptor_.promised = body.ballot;
      if (safety_ != nullptr) safety_->on_promise(self_, acceptor_.promised);
    }
    P1bBody reply{body.ballot, acceptor_.promised, {}};
    reply.accepted.reserve(acceptor_.accepted.size());
    for (const auto& [slot, pv] : acceptor_.accepted) reply.accepted.push_back(pv);
    ctx.send(msg.from, net::make_msg(kP1b, std::move(reply)));
    return true;
  }
  if (msg.header == kP2a) {
    const auto& body = net::msg_body<P2aBody>(msg);
    config_.profile.charge(ctx, body.pvalue.batch.size());
    if (!(body.pvalue.ballot < acceptor_.promised)) {
      if (acceptor_.promised < body.pvalue.ballot) {
        acceptor_.promised = body.pvalue.ballot;
        if (safety_ != nullptr) safety_->on_promise(self_, acceptor_.promised);
      }
      auto [it, inserted] = acceptor_.accepted.try_emplace(body.pvalue.slot, body.pvalue);
      if (!inserted && it->second.ballot < body.pvalue.ballot) it->second = body.pvalue;
      if (safety_ != nullptr) {
        safety_->on_accept(self_, body.pvalue.ballot, body.pvalue.slot,
                           body.pvalue.batch.commands());
      }
    }
    ctx.send(msg.from,
             net::make_msg(kP2b, P2bBody{body.pvalue.ballot, acceptor_.promised, body.pvalue.slot}));
    return true;
  }

  // ---- scout (phase 1 collector) -------------------------------------------
  if (msg.header == kP1b) {
    const auto& body = net::msg_body<P1bBody>(msg);
    config_.profile.charge(ctx, body.accepted.size());
    if (!leader_.scout || !(body.scout_ballot == leader_.scout->ballot)) return true;
    if (leader_.scout->ballot < body.promised) {
      preempted(ctx, body.promised);
      return true;
    }
    Scout& scout = *leader_.scout;
    if (scout.waitfor.erase(msg.from.value) == 0) return true;
    for (const PValue& pv : body.accepted) {
      auto [it, inserted] = scout.pvalues.try_emplace(pv.slot, pv);
      if (!inserted && it->second.ballot < pv.ballot) it->second = pv;  // pmax
    }
    if (config_.peers.size() - scout.waitfor.size() >= quorum()) {
      // Adopted: earlier accepted values override our own proposals.
      leader_.ballot = scout.ballot;
      for (const auto& [slot, pv] : scout.pvalues) {
        if (learned_.count(slot) > 0) continue;
        leader_.proposals[slot] = pv.batch;
      }
      leader_.active = true;
      if (config_.tracer) {
        config_.tracer->ballot(ctx.now(), self_, leader_.ballot.round, leader_.ballot.leader,
                               obs::BallotPhase::kAdopted);
      }
      leader_.scout.reset();
      for (const auto& [slot, batch] : leader_.proposals) {
        if (learned_.count(slot) == 0) start_commander(ctx, slot, batch);
      }
    }
    return true;
  }

  // ---- commander (phase 2 collector) ----------------------------------------
  if (msg.header == kP2b) {
    const auto& body = net::msg_body<P2bBody>(msg);
    config_.profile.charge_control(ctx);
    auto it = leader_.commanders.find(body.slot);
    if (it == leader_.commanders.end() || !(it->second.ballot == body.commander_ballot)) {
      return true;
    }
    if (it->second.ballot < body.promised) {
      preempted(ctx, body.promised);
      return true;
    }
    Commander& cmd = it->second;
    if (cmd.waitfor.erase(msg.from.value) == 0) return true;
    if (config_.peers.size() - cmd.waitfor.size() >= quorum()) {
      const net::Message dec = net::make_msg(kDecision, DecisionBody{cmd.slot, cmd.batch});
      for (NodeId peer : config_.peers) {
        ctx.send(peer, dec);
      }
      leader_.commanders.erase(it);
    }
    return true;
  }

  // ---- learner role ---------------------------------------------------------
  if (msg.header == kDecision) {
    const auto& body = net::msg_body<DecisionBody>(msg);
    config_.profile.charge(ctx, body.batch.size());
    learn(ctx, body.slot, body.batch);
    return true;
  }
  return false;
}

void PaxosModule::start_scout(net::NodeContext& ctx) {
  last_scout_attempt_ = ctx.now();
  max_round_seen_ += 1;
  Scout scout;
  scout.ballot = Ballot{max_round_seen_, self_};
  scout.waitfor.clear();
  for (NodeId peer : config_.peers) scout.waitfor.insert(peer.value);
  scout.last_sent = ctx.now();
  leader_.scout = std::move(scout);
  if (config_.tracer) {
    config_.tracer->ballot(ctx.now(), self_, leader_.scout->ballot.round, self_,
                           obs::BallotPhase::kScout);
  }
  const net::Message p1a = net::make_msg(kP1a, P1aBody{leader_.scout->ballot});
  for (NodeId peer : config_.peers) {
    ctx.send(peer, p1a);
  }
}

void PaxosModule::start_commander(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
  Commander cmd;
  cmd.ballot = leader_.ballot;
  cmd.slot = slot;
  cmd.batch = batch;
  for (NodeId peer : config_.peers) cmd.waitfor.insert(peer.value);
  cmd.last_sent = ctx.now();
  leader_.commanders[slot] = std::move(cmd);
  const net::Message p2a = net::make_msg(kP2a, P2aBody{PValue{leader_.ballot, slot, batch}});
  for (NodeId peer : config_.peers) {
    ctx.send(peer, p2a);
  }
}

void PaxosModule::preempted(net::NodeContext& ctx, const Ballot& by) {
  if (config_.tracer) {
    config_.tracer->ballot(ctx.now(), self_, by.round, by.leader, obs::BallotPhase::kPreempted);
  }
  max_round_seen_ = std::max(max_round_seen_, by.round);
  leader_.active = false;
  leader_.scout.reset();
  leader_.commanders.clear();
}

void PaxosModule::learn(net::NodeContext& ctx, Slot slot, const EncodedBatch& batch) {
  auto [it, inserted] = learned_.try_emplace(slot, batch);
  if (!inserted) return;
  last_progress_ = ctx.now();
  if (safety_ != nullptr) safety_->on_decide(self_, slot, batch.commands());
  leader_.proposals.erase(slot);
  leader_.commanders.erase(slot);
  notify_decide(ctx, slot, batch);
}

void PaxosModule::on_tick(net::NodeContext& ctx) {
  const bool pending = std::any_of(
      leader_.proposals.begin(), leader_.proposals.end(),
      [this](const auto& kv) { return learned_.count(kv.first) == 0; });
  if (!pending) return;
  // Lost-message recovery: the network may drop frames (link faults, a peer
  // dying mid-send), so an in-flight scout or commander that has gone silent
  // re-sends its 1a/2a to the acceptors not yet heard from. Acceptors always
  // re-answer (promise/accept state is monotone), duplicate 1b/2b replies
  // are ignored by the waitfor-erase test, and duplicate decisions dedup in
  // learn() — so retransmission is safe; without it a single dropped reply
  // wedges the ballot forever (found by the seeded chaos campaigns).
  if (leader_.scout) {  // phase 1 in flight
    Scout& scout = *leader_.scout;
    if (ctx.now() - scout.last_sent >= config_.retransmit_timeout) {
      scout.last_sent = ctx.now();
      const net::Message p1a = net::make_msg(kP1a, P1aBody{scout.ballot});
      for (NodeId peer : config_.peers) {
        if (scout.waitfor.count(peer.value) > 0) ctx.send(peer, p1a);
      }
    }
    return;
  }
  if (leader_.active) {
    for (auto& [slot, cmd] : leader_.commanders) {
      if (ctx.now() - cmd.last_sent < config_.retransmit_timeout) continue;
      cmd.last_sent = ctx.now();
      const net::Message p2a = net::make_msg(kP2a, P2aBody{PValue{cmd.ballot, slot, cmd.batch}});
      for (NodeId peer : config_.peers) {
        if (cmd.waitfor.count(peer.value) > 0) ctx.send(peer, p2a);
      }
    }
    return;
  }

  // Failure detection is unreliable and timeout-based; stagger timeouts by
  // peer rank so a single node usually takes over first.
  const auto rank = static_cast<std::uint64_t>(
      std::find(config_.peers.begin(), config_.peers.end(), self_) - config_.peers.begin());
  const bool bootstrap = max_round_seen_ == 0 && rank == 0;
  // "No progress" is measured from whichever is later: the last decision or
  // the moment the currently-pending work appeared (an idle system is not a
  // dead leader).
  const net::Time reference = std::max(last_progress_, pending_since_);
  const net::Time patience = config_.leader_timeout * (1 + rank);
  if (bootstrap ||
      (ctx.now() - reference > patience &&
       ctx.now() - last_scout_attempt_ > config_.scout_retry)) {
    start_scout(ctx);
  }
}

}  // namespace shadow::consensus
