#!/usr/bin/env bash
# Tier-1 verification plus a strict-warnings build of the obs library.
#
#   scripts/check.sh            # configure + build + ctest + -Werror obs build
#   scripts/check.sh --fast     # skip the separate -Werror build
#
# The strict pass rebuilds only the shadow_obs target (and its common/sim
# dependencies) with -Wall -Wextra -Werror in a separate build tree, so new
# observability code stays warning-clean without requiring the whole legacy
# tree to be.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure =="
cmake -B build -S . >/dev/null

echo "== tier-1: build =="
cmake --build build -j

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== strict: -Wall -Wextra -Werror build of shadow_obs + shadow_wire =="
  cmake -B build-strict -S . \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
  cmake --build build-strict -j --target shadow_obs shadow_wire

  echo "== wire: round-trip suite under extra corruption seeds =="
  for seed in 7 131 9973; do
    echo "-- SHADOW_WIRE_SEED=${seed}"
    SHADOW_WIRE_SEED="${seed}" \
      ./build/tests/wire_codec_roundtrip_test \
      --gtest_filter='WireCodec.DecodeRejectsSeededCorruption' >/dev/null
  done

  echo "== wire: PBR + SMR end-to-end in wire-fidelity mode =="
  ./build/tests/wire_fidelity_test \
    --gtest_filter='WireFidelity.PbrEndToEndWithRealBytesOnEveryLink:WireFidelity.SmrEndToEndWithRealBytesOnEveryLink' \
    >/dev/null
fi

echo "== all checks passed =="
