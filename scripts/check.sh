#!/usr/bin/env bash
# Tier-1 verification plus strict-warnings builds and network-layer gates.
#
#   scripts/check.sh            # everything below
#   scripts/check.sh --fast     # tier-1 only (configure + build + ctest)
#
# Beyond tier-1 this runs:
#   * a -Wall -Wextra -Werror build of shadow_net, shadow_obs, and
#     shadow_wire in a separate build tree, so the transport and
#     observability layers stay warning-clean;
#   * layering grep gates: protocol code (consensus, tob, core, baselines)
#     must program against net::Transport/net::NodeContext only — no
#     sim::Context and no sim/world.hpp includes — the consensus/TOB
#     layers must stay sharding-blind (no ShardRouter/GroupId) and
#     replication-blind (no repl/ includes), src/repl must never include
#     sim/ or net/tcp, and the versioned storage engine (src/db) must
#     never include consensus/, tob/, or repl/ headers;
#   * an ASan+UBSan build of the whole tree with the test suites run under
#     it (the zero-copy payload path lives or dies by buffer ownership);
#   * a TSan build of the threaded suites — the SPSC ring unit tests and the
#     pipelined TCP cluster end-to-end test — so the three-stage pipeline's
#     cross-thread hand-offs stay provably race-free;
#   * the wire round-trip suite under extra corruption seeds;
#   * PBR + SMR end-to-end in the simulator's wire-fidelity mode;
#   * a fixed-seed chaos campaign: 20 seeded multi-fault schedules (crashes,
#     leader failover, partitions, link faults) against the simulated SMR
#     cluster, which must commit everything with zero checker violations —
#     plus a sharded (2-group) campaign where every fault hits both groups
#     at once, rebalance-under-faults campaigns (a range split mid-schedule,
#     with and without the donor replica killed mid-transfer), a read-mix
#     campaign plus one pinned seed that kills replicas mid-read-only-fanout
#     (snapshot-read checker must stay green), the Fig. 10(b)
#     compressed/delta byte-volume gate, the read-mix throughput gate
#     (lock-free snapshot reads >= 2x the 2PC-read baseline), and a smaller
#     campaign and the TCP chaos suite under TSan;
#   * a timeboxed localhost TCP cluster: real processes, real sockets, the
#     bank workload, and the offline trace checker (skipped gracefully when
#     the environment forbids sockets), single-threaded, pipelined, and
#     sharded (2 consensus groups with cross-shard 2PC) — and the chaos
#     launcher, which SIGKILLs and rejoins server processes mid-load
#     (run_chaos_cluster.sh).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure =="
cmake -B build -S . >/dev/null

echo "== tier-1: build =="
cmake --build build -j

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "== layering: protocol code must not reach into the simulator =="
  if grep -rl "sim::Context" src/consensus src/tob src/core src/baselines; then
    echo "FAIL: protocol code names sim::Context (use net::NodeContext)" >&2
    exit 1
  fi
  if grep -rl 'sim/world\.hpp' src/consensus src/tob src/core src/baselines; then
    echo "FAIL: protocol code includes sim/world.hpp (use net/transport.hpp)" >&2
    exit 1
  fi
  # Sharding stays above the consensus/TOB layer: a Paxos acceptor or TOB
  # node never knows which replication group it serves (groups are just
  # disjoint node sets wired by core/group.cpp).
  if grep -rlw 'ShardRouter\|GroupId' src/consensus src/tob; then
    echo "FAIL: consensus/tob code names ShardRouter/GroupId (sharding lives in src/core)" >&2
    exit 1
  fi
  # The state-transfer engine is transport- and simulator-agnostic: it sees
  # net::Transport only, never the simulator or the TCP backend, so every
  # protocol (and the TCP cluster) can mount streams on it unchanged.
  if grep -rl '#include "sim/\|#include "net/tcp' src/repl; then
    echo "FAIL: src/repl reaches into sim/ or net/tcp (repl is transport-agnostic)" >&2
    exit 1
  fi
  # And the ordering layers below it stay replication-blind: consensus/TOB
  # order opaque commands; what a snapshot stream is lives above them.
  if grep -rl '#include "repl/' src/consensus src/tob; then
    echo "FAIL: consensus/tob code includes repl/ (state transfer lives above ordering)" >&2
    exit 1
  fi
  # The versioned storage engine is a pure library under the replication
  # stack: version chains, GC, and read_at know nothing about ordering,
  # consensus, or state transfer (those drive the engine from above).
  if grep -rl '#include "\(consensus\|tob\|repl\)/' src/db; then
    echo "FAIL: src/db includes consensus/tob/repl headers (storage sits below ordering)" >&2
    exit 1
  fi

  echo "== strict: -Wall -Wextra -Werror build of shadow_net + shadow_obs + shadow_wire =="
  cmake -B build-strict -S . \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
  cmake --build build-strict -j --target shadow_net shadow_obs shadow_wire

  echo "== sanitizers: ASan+UBSan build + unit suites =="
  # The zero-copy payload path is all shared buffers and borrowed views:
  # address/UB sanitizers are the cheapest way to prove no view outlives its
  # owner and no splice aliases freed memory.
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build build-asan -j
  # Per-test timeout: a deadlocked sanitizer run must fail loudly, not hang CI.
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" --timeout 300

  echo "== sanitizers: TSan build + threaded suites (SPSC ring, pipelined cluster) =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build build-tsan -j --target common_spsc_ring_test net_tcp_cluster_e2e_test
  ./build-tsan/tests/common_spsc_ring_test >/dev/null
  ./build-tsan/tests/net_tcp_cluster_e2e_test \
    --gtest_filter='*SmrPipelined*:TcpShardedClusterE2e.*' >/dev/null

  echo "== wire: round-trip suite under extra corruption seeds =="
  for seed in 7 131 9973; do
    echo "-- SHADOW_WIRE_SEED=${seed}"
    SHADOW_WIRE_SEED="${seed}" \
      ./build/tests/wire_codec_roundtrip_test \
      --gtest_filter='WireCodec.DecodeRejectsSeededCorruption' >/dev/null
  done

  echo "== wire: PBR + SMR end-to-end in wire-fidelity mode =="
  ./build/tests/wire_fidelity_test \
    --gtest_filter='WireFidelity.PbrEndToEndWithRealBytesOnEveryLink:WireFidelity.SmrEndToEndWithRealBytesOnEveryLink' \
    >/dev/null

  echo "== chaos: fixed-seed campaign against the simulated SMR cluster =="
  # Deterministic CI gate: these exact 20 fault schedules once exposed a
  # Paxos retransmission wedge; a regression prints the failing plan's
  # replay seed and its minimized schedule.
  timeout 600 ./build/bench/chaos_campaign --plans 20 --seed 20140623 >/dev/null

  echo "== chaos: sharded fixed-seed campaign (2 groups, faults hit both at once) =="
  # Every fault lands on the target machine's node in BOTH groups; a crash
  # restart drives two independent per-group snapshot rejoins under load.
  timeout 600 ./build/bench/chaos_campaign --plans 8 --seed 20140623 \
    --shards 2 --cross-shard-pct 20 >/dev/null

  echo "== chaos: rebalance under faults (range split mid-campaign, donor killed) =="
  # A ::mig-split moves a quarter of the keyspace between groups at t=2s,
  # concurrent with the fault schedule; plans pass only if the migration also
  # commits. The second run SIGKILLs the preferred donor replica
  # mid-transfer, which must fail over to another from-group replica.
  timeout 600 ./build/bench/chaos_campaign --plans 4 --seed 20140623 \
    --shards 2 --cross-shard-pct 20 --rebalance-at-ms 2000 >/dev/null
  timeout 600 ./build/bench/chaos_campaign --plans 4 --seed 20140623 \
    --shards 2 --cross-shard-pct 20 --rebalance-at-ms 2000 --kill-donor >/dev/null

  echo "== chaos: read-mix campaign + pinned replica-kill-mid-read-only-fanout seed =="
  # 40% of each client's txns ride the lock-free snapshot-read path while the
  # fault schedules crash replicas and TOB nodes under them; the offline
  # checker's snapshot-read check (kRoCut cross-check) must stay green. The
  # pinned replay is a crash-pair plan that SIGKILLs two of the three active
  # replicas in every group while read-only fanouts are in flight: it once
  # wedged clients in a permanent re-snap loop against a v1-promoted spare
  # whose version chains had never re-opened (served snaps, refused every
  # pinned read), and a regression here reprints the failing plan's seed.
  timeout 600 ./build/bench/chaos_campaign --plans 6 --seed 20140623 \
    --shards 2 --cross-shard-pct 20 --read-pct 40 >/dev/null
  timeout 600 ./build/bench/chaos_campaign --replay 2340316686833741077 \
    --shards 2 --cross-shard-pct 20 --read-pct 40 >/dev/null

  echo "== db: read-mix throughput gate (snapshot reads vs 2PC-read baseline) =="
  # Cross-shard read-only fast path must clear 2x the 2PC-read baseline's
  # aggregate throughput with zero reader lock conflicts/aborts, and both
  # traces must pass the offline checker (the ro trace with a non-zero
  # snapshot-cut count).
  timeout 400 ./build/bench/read_mix --gate >/dev/null

  echo "== repl: compressed + delta snapshot byte-volume gate =="
  # Fig. 10(b) companion: a delta+compressed bank re-sync must stay >= 3x
  # below the raw full copy on the wire.
  timeout 300 ./build/bench/fig10b_state_transfer --gate

  echo "== chaos: TSan campaign + TCP chaos suite =="
  # Fault schedules exercise crash/restart interleavings the clean-run TSan
  # gates never reach (rejoin snapshots racing the executor pipeline).
  cmake --build build-tsan -j --target chaos_campaign net_tcp_chaos_test
  timeout 600 ./build-tsan/bench/chaos_campaign --plans 4 --seed 20140623 >/dev/null
  ./build-tsan/tests/net_tcp_chaos_test >/dev/null

  echo "== net: localhost TCP cluster (multi-process, bank workload, trace checker) =="
  if ./build/examples/cluster_node --mode pbr --host 0 --base-port 34999 \
       --run-for-ms 1 >/dev/null 2>&1; then
    for mode in pbr smr; do
      echo "-- ${mode}: 3 server processes + client over 127.0.0.1"
      timeout 120 ./build/examples/run_cluster.sh "$mode" 30 \
        "$((34000 + RANDOM % 1000))" 15000
    done
    echo "-- smr pipelined: 3-stage pipeline, 4 clients, adaptive batching"
    timeout 120 ./build/examples/run_cluster.sh smr 200 \
      "$((34000 + RANDOM % 1000))" 10000 4 pipelined
    echo "-- smr sharded: 2 consensus groups, 10% cross-shard 2PC transfers"
    timeout 120 ./build/examples/run_cluster.sh smr 200 \
      "$((34000 + RANDOM % 1000))" 10000 4 pipelined 2 10
    echo "-- smr rebalance: range split at t=500ms under 2-client load"
    timeout 120 ./build/examples/run_cluster.sh smr 6000 \
      "$((34000 + RANDOM % 1000))" 20000 2 "" 2 20 500
    echo "-- smr chaos: SIGKILL/restart cycles with snapshot rejoin under load"
    timeout 240 ./build/examples/run_chaos_cluster.sh 40000 \
      "$((35000 + RANDOM % 1000))" 60000 5 2
  else
    echo "-- skipped: sockets unavailable in this environment"
  fi
fi

echo "== all checks passed =="
