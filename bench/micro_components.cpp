// Component microbenchmarks (google-benchmark, real time — not simulated):
// the building blocks whose virtual-time cost models the paper-reproduction
// benches rely on. These measure the *implementation's* real speed: DSL
// interpretation tiers, engine operations, lock manager, snapshot
// serialization, and one full simulated consensus round.
#include <benchmark/benchmark.h>

#include "sim/world.hpp"
#include "consensus/safety.hpp"
#include "db/engine.hpp"
#include "db/sql.hpp"
#include "eventml/compile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/clk.hpp"
#include "tob/tob.hpp"

namespace {

using namespace shadow;

// ---------------------------------------------------------------- EventML --

eventml::Spec clk_spec() {
  return eventml::specs::make_clk_spec(
      {{NodeId{0}},
       [](NodeId, const eventml::ValuePtr& v) { return std::make_pair(v, NodeId{0}); }});
}

void BM_DslInterpretMessage(benchmark::State& state) {
  const eventml::Spec spec = clk_spec();
  eventml::Instance instance(spec.main, NodeId{0});
  const eventml::ValuePtr body =
      eventml::specs::clk_msg_body(eventml::Value::integer(1), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.on_event(eventml::specs::kClkMsgHeader, body));
  }
}
BENCHMARK(BM_DslInterpretMessage);

void BM_DslInterpretMessageOptimized(benchmark::State& state) {
  const eventml::Spec spec = clk_spec();
  eventml::Instance instance(eventml::optimize(spec.main).root, NodeId{0});
  const eventml::ValuePtr body =
      eventml::specs::clk_msg_body(eventml::Value::integer(1), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.on_event(eventml::specs::kClkMsgHeader, body));
  }
}
BENCHMARK(BM_DslInterpretMessageOptimized);

void BM_DslWorklistInterpreter(benchmark::State& state) {
  const eventml::Spec spec = clk_spec();
  eventml::Instance instance(spec.main, NodeId{0}, eventml::InterpreterKind::kWorklist);
  const eventml::ValuePtr body =
      eventml::specs::clk_msg_body(eventml::Value::integer(1), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.on_event(eventml::specs::kClkMsgHeader, body));
  }
}
BENCHMARK(BM_DslWorklistInterpreter);

void BM_OptimizerPass(benchmark::State& state) {
  const eventml::Spec spec = clk_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eventml::optimize(spec.main));
  }
}
BENCHMARK(BM_OptimizerPass);

// ------------------------------------------------------------------ engine --

db::TableSchema bench_schema() {
  return {"t",
          {{"k", db::ColumnType::kBigInt}, {"v", db::ColumnType::kBigInt},
           {"s", db::ColumnType::kVarchar}},
          {0}};
}

void BM_EnginePointRead(benchmark::State& state) {
  db::Engine engine(db::make_h2_traits());
  engine.create_table(bench_schema());
  const db::TxnId setup = engine.begin();
  for (std::int64_t k = 0; k < 10000; ++k) {
    engine.execute(setup, db::make_insert("t", {db::Value(k), db::Value(k), db::Value("x")}));
  }
  engine.commit(setup);
  std::int64_t k = 0;
  for (auto _ : state) {
    const db::TxnId txn = engine.begin();
    benchmark::DoNotOptimize(engine.execute(txn, db::make_select("t", {db::Value(k)})));
    engine.commit(txn);
    k = (k + 7919) % 10000;
  }
}
BENCHMARK(BM_EnginePointRead);

void BM_EngineUpdateCommit(benchmark::State& state) {
  db::Engine engine(db::make_h2_traits());
  engine.create_table(bench_schema());
  const db::TxnId setup = engine.begin();
  for (std::int64_t k = 0; k < 10000; ++k) {
    engine.execute(setup, db::make_insert("t", {db::Value(k), db::Value(k), db::Value("x")}));
  }
  engine.commit(setup);
  std::int64_t k = 0;
  for (auto _ : state) {
    const db::TxnId txn = engine.begin();
    engine.execute(txn, db::make_update("t", {db::Value(k)},
                                        {{1, db::SetOp::kAdd, db::Value(1)}}));
    engine.commit(txn);
    k = (k + 7919) % 10000;
  }
}
BENCHMARK(BM_EngineUpdateCommit);

void BM_EngineRangeScan(benchmark::State& state) {
  db::Engine engine(db::make_h2_traits());
  db::TableSchema schema{"t2",
                         {{"a", db::ColumnType::kBigInt}, {"b", db::ColumnType::kBigInt}},
                         {0, 1}};
  engine.create_table(schema);
  const db::TxnId setup = engine.begin();
  for (std::int64_t a = 0; a < 100; ++a) {
    for (std::int64_t b = 0; b < 100; ++b) {
      engine.execute(setup, db::make_insert("t2", {db::Value(a), db::Value(b)}));
    }
  }
  engine.commit(setup);
  for (auto _ : state) {
    const db::TxnId txn = engine.begin();
    benchmark::DoNotOptimize(engine.execute(
        txn, db::make_scan("t2", {db::Condition{0, db::CmpOp::kEq, db::Value(42)}})));
    engine.commit(txn);
  }
}
BENCHMARK(BM_EngineRangeScan);

void BM_SqlParsePointSelect(benchmark::State& state) {
  const db::TableSchema schema = bench_schema();
  const auto lookup = [&schema](const std::string& name) {
    return name == "t" ? &schema : nullptr;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::parse_sql("SELECT v, s FROM t WHERE k = 123", lookup));
  }
}
BENCHMARK(BM_SqlParsePointSelect);

void BM_SnapshotSerialize50k(benchmark::State& state) {
  db::Engine engine(db::make_h2_traits());
  engine.create_table(bench_schema());
  const db::TxnId setup = engine.begin();
  for (std::int64_t k = 0; k < 50000; ++k) {
    engine.execute(setup, db::make_insert("t", {db::Value(k), db::Value(k), db::Value("x")}));
  }
  engine.commit(setup);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.snapshot());
  }
}
BENCHMARK(BM_SnapshotSerialize50k)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- zero-copy --

consensus::Batch batch64() {
  consensus::Batch batch;
  for (std::uint64_t i = 0; i < 64; ++i) {
    batch.push_back(consensus::Command{ClientId{1}, i + 1, std::string(140, 'x')});
  }
  return batch;
}

void BM_BatchEncode64(benchmark::State& state) {
  // The one serialization a batch pays in its lifetime: 64 commands of 140
  // bytes, structured form -> encoded sub-frame.
  const consensus::Batch batch = batch64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(consensus::EncodedBatch{batch});
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(consensus::EncodedBatch{batch64()}.payload_size()));
}
BENCHMARK(BM_BatchEncode64);

void BM_BatchSplice64(benchmark::State& state) {
  // What every further hop pays instead: re-framing the already-encoded
  // batch by splicing its payload views (relay, re-propose, deliver).
  const consensus::EncodedBatch encoded{batch64()};
  for (auto _ : state) {
    BytesWriter w;
    wire::Codec<consensus::EncodedBatch>::encode(w, encoded);
    benchmark::DoNotOptimize(w.take_segments());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.payload_size()));
}
BENCHMARK(BM_BatchSplice64);

void BM_BatchFlatten64(benchmark::State& state) {
  // The copy the splice path avoids: gathering the same sub-frame into one
  // contiguous staging buffer.
  const consensus::EncodedBatch encoded{batch64()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoded.payload().flatten());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.payload_size()));
}
BENCHMARK(BM_BatchFlatten64);

// ------------------------------------------------------------- distributed --

void BM_SimulatedPaxosBroadcast(benchmark::State& state) {
  // Real-time cost of simulating one full broadcast (≈40 simulation events).
  for (auto _ : state) {
    sim::World world(1);
    tob::TobConfig config;
    for (int i = 0; i < 3; ++i) {
      config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
    }
    tob::TobService service = tob::make_service(world, config);
    const NodeId client = world.add_node("client");
    world.set_handler(client, [](net::NodeContext&, const sim::Message&) {});
    world.post(client, config.nodes[0],
               sim::make_msg(tob::kBroadcastHeader,
                             tob::BroadcastBody{tob::Command{ClientId{1}, 1, "x"}}));
    world.run_until(1000000);
    benchmark::DoNotOptimize(service.nodes[0]->delivered_count());
  }
}
BENCHMARK(BM_SimulatedPaxosBroadcast)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
