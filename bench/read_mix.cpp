// Read-mix throughput: lock-free snapshot reads vs. 2PC reads.
//
// Two identical 2-shard deployments run the same 50% read mix — half the
// clients issue cross-shard pair reads (bank.balance2), half issue
// cross-shard transfers — and differ only in how the reads execute:
//
//   ro   — the read-only snapshot path (core/rosnap.*): a version-cut
//          exchange plus node-addressed versioned reads; no consensus log
//          entries, no prepare locks, nothing for a transfer to conflict
//          with.
//   2pc  — balance2 deliberately re-registered as a WRITE, so every read
//          runs the TOB-ordered two-phase commit: three ordered log entries
//          per participant group and no-wait prepare locks that collide with
//          concurrent transfers.
//
// Gate (--gate, used by scripts/check.sh): the snapshot-read deployment must
// reach >= 2x the 2PC-read deployment's aggregate committed txn/s, readers
// on the snapshot path must finish with ZERO conflict retries and zero
// aborts (they never touch the lock manager), and both traces must pass the
// offline checker — the ro trace with a non-zero number of verified
// cross-shard cuts.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "sim/world.hpp"
#include "workload/bank.hpp"

namespace shadow::bench {
namespace {

using workload::bank::BankConfig;

// Saturating client counts (Fig. 9a saturates near 32 clients per group):
// at saturation the comparison prices the read paths' CPU and log-entry
// costs, not the closed loop's round-trip latency.
constexpr std::size_t kShards = 2;
constexpr std::size_t kReaders = 24;
constexpr std::size_t kWriters = 24;
constexpr std::size_t kTxnsPerClient = 200;
// A small keyspace keeps reader/writer key collisions frequent: the 2PC-read
// baseline then pays for its no-wait prepare locks (reads colliding with
// transfers spin through abort/backoff/retry, three ordered entries per
// participant per spin), which is precisely the cost the lock-free path does
// not have. On a sparse keyspace both paths are conflict-free and the gap
// collapses toward the pure log-entry cost.
const BankConfig kBank{256, 0};

struct MixRun {
  double txn_per_sec = 0.0;
  double reads_per_sec = 0.0;
  std::uint64_t reader_conflicts = 0;
  std::uint64_t reader_aborts = 0;
  std::uint64_t ro_committed = 0;
  std::uint64_t ro_restarts = 0;
  bool check_ok = false;
  std::size_t ro_cuts_checked = 0;
  std::string check_summary;
};

MixRun run_mix(bool snapshot_reads) {
  sim::World world(snapshot_reads ? 97 : 98);
  obs::Tracer tracer{{.capacity = 1 << 21, .record_messages = false}};
  tracer.attach(world);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  core::ClusterOptions opts;
  opts.registry = registry;
  opts.engines = {db::make_h2_traits()};
  opts.loader = [](db::Engine& e) { workload::bank::load(e, kBank); };
  opts.tracer = &tracer;

  core::ShardRouter router(kShards);
  router.install_default_extractors();
  if (!snapshot_reads) {
    // Baseline: strip the read-only flag so balance2 takes the full
    // TOB-ordered 2PC path (the registered bank_balance2_plan serves it).
    router.register_proc(workload::bank::kBalance2Proc,
                         core::ShardRouter::ProcInfo{"accounts", {0, 1}});
  }
  router.set_tracer(&tracer);
  std::vector<core::ReplicationGroup> groups;
  for (std::size_t g = 0; g < kShards; ++g) {
    core::GroupOptions go;
    go.id = static_cast<core::GroupId>(g);
    go.name_prefix = "g" + std::to_string(g) + ".";
    go.metric_scope = "group." + std::to_string(g) + ".";
    go.router = &router;
    groups.push_back(core::make_replication_group(world, opts, go));
  }
  for (std::size_t g = 0; g < kShards; ++g) {
    router.set_group_targets(static_cast<core::GroupId>(g), groups[g].tob_nodes,
                             groups[g].replica_nodes);
  }

  std::vector<std::unique_ptr<core::DbClient>> readers;
  std::vector<std::unique_ptr<core::DbClient>> writers;
  for (std::size_t i = 0; i < kReaders + kWriters; ++i) {
    const bool reader = i < kReaders;
    const NodeId node = world.add_node("client" + std::to_string(i + 1));
    core::DbClient::Options copts;
    copts.mode = core::DbClient::Mode::kTob;
    copts.router = &router;
    copts.retry_conflict_aborts = true;
    copts.txn_limit = kTxnsPerClient;
    copts.tracer = &tracer;
    auto rng = std::make_shared<Rng>(1000 + i);
    auto next = [rng, reader]() {
      const auto from =
          static_cast<std::int64_t>(rng->next() % static_cast<std::uint64_t>(kBank.accounts));
      const std::int64_t to = (from + 1) % kBank.accounts;
      if (reader) {
        return std::make_pair(std::string(workload::bank::kBalance2Proc),
                              workload::Params{db::Value(from), db::Value(to)});
      }
      return std::make_pair(
          std::string(workload::bank::kTransferProc),
          workload::Params{db::Value(from), db::Value(to), db::Value(std::int64_t{1})});
    };
    auto client = std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts, std::move(next));
    (reader ? readers : writers).push_back(std::move(client));
  }

  for (auto& c : readers) c->start();
  for (auto& c : writers) c->start();
  net::Time horizon = 0;
  const auto all_done = [&]() {
    for (const auto& c : readers) {
      if (!c->done()) return false;
    }
    for (const auto& c : writers) {
      if (!c->done()) return false;
    }
    return true;
  };
  while (true) {
    horizon += 20000;
    world.run_until(horizon);
    if (all_done() || horizon > 3000000000ULL) break;
  }

  MixRun run;
  std::uint64_t committed = 0;
  std::uint64_t read_committed = 0;
  for (const auto& c : readers) {
    committed += c->committed();
    read_committed += c->committed();
    run.reader_conflicts += c->conflict_retries();
    run.reader_aborts += c->aborted();
    run.ro_committed += c->ro_committed();
    run.ro_restarts += c->ro_restarts();
  }
  for (const auto& c : writers) committed += c->committed();
  run.txn_per_sec = static_cast<double>(committed) * 1e6 / static_cast<double>(world.now());
  run.reads_per_sec =
      static_cast<double>(read_committed) * 1e6 / static_cast<double>(world.now());
  const obs::CheckResult check = obs::check_trace(tracer.snapshot());
  run.check_ok = check.ok() && check.committed_txns_checked >= committed;
  run.ro_cuts_checked = check.ro_cuts_checked;
  run.check_summary = check.summary();
  return run;
}

}  // namespace
}  // namespace shadow::bench

int main(int argc, char** argv) {
  using shadow::bench::MixRun;
  const bool gate = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  std::printf("# Read mix (50%% cross-shard pair reads / 50%% cross-shard transfers),\n");
  std::printf("# 2 shards, %zu readers + %zu writers x %zu txns (virtual time)\n",
              shadow::bench::kReaders, shadow::bench::kWriters, shadow::bench::kTxnsPerClient);
  std::printf("%-10s %-12s %-12s %-12s %-10s %-10s %-8s\n", "reads", "txn/s", "reads/s",
              "rd_confl", "rd_abort", "ro_cuts", "check");

  const MixRun ro = shadow::bench::run_mix(/*snapshot_reads=*/true);
  const MixRun two_pc = shadow::bench::run_mix(/*snapshot_reads=*/false);
  const auto print = [](const char* name, const MixRun& run) {
    std::printf("%-10s %-12.0f %-12.0f %-12llu %-10llu %-10zu %-8s\n", name, run.txn_per_sec,
                run.reads_per_sec, static_cast<unsigned long long>(run.reader_conflicts),
                static_cast<unsigned long long>(run.reader_aborts), run.ro_cuts_checked,
                run.check_ok ? "ok" : "FAIL");
    if (!run.check_ok) std::printf("  %s\n", run.check_summary.c_str());
  };
  print("ro", ro);
  print("2pc", two_pc);

  bool ok = ro.check_ok && two_pc.check_ok;
  const double speedup = two_pc.txn_per_sec > 0 ? ro.txn_per_sec / two_pc.txn_per_sec : 0.0;
  std::printf("# snapshot-read speedup over 2PC reads: %.2fx\n", speedup);
  if (gate) {
    if (speedup < 2.0) {
      std::printf("FAIL: snapshot reads are %.2fx the 2PC-read baseline (acceptance: >= 2x)\n",
                  speedup);
      ok = false;
    }
    if (ro.reader_conflicts != 0 || ro.reader_aborts != 0) {
      std::printf("FAIL: snapshot-path readers saw %llu conflicts / %llu aborts "
                  "(acceptance: zero — they never touch the lock manager)\n",
                  static_cast<unsigned long long>(ro.reader_conflicts),
                  static_cast<unsigned long long>(ro.reader_aborts));
      ok = false;
    }
    if (ro.ro_cuts_checked == 0) {
      std::printf("FAIL: checker verified no cross-shard cuts (vacuous pass)\n");
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
