// Chaos campaign driver: robustness as a measured quantity.
//
// Runs N seeded multi-fault plans (crashes, leader failover, partitions,
// byte-level link faults, reconfiguration mid-state-transfer) against the
// simulated ShadowDB-SMR cluster under bank load, asserts every offline
// checker after each run, and reports survived faults and throughput under
// faults. A failing plan prints its replay seed and the minimized schedule.
//
//   chaos_campaign [--plans N] [--seed S] [--txns T] [--clients C]
//                  [--shards N] [--cross-shard-pct P] [--read-pct P]
//                  [--rebalance-at-ms T] [--kill-donor]
//                  [--replay PLAN_SEED] [--no-minimize] [--verbose]
//
// --shards > 1 runs every plan against a sharded cluster (N consensus
// groups over the same machines, cross-shard 2PC transfers in the mix);
// faults then hit the victim's slice of every group at once. --read-pct
// additionally makes that % of transactions cross-shard snapshot reads, so
// crashes land mid-version-cut-exchange and mid-read-fanout.
//
// --rebalance-at-ms T (with --shards > 1) broadcasts a `::mig-split` moving
// a quarter of the keyspace from group 0 to group 1 at virtual time T ms,
// concurrent with the fault schedule; a plan then passes only if the
// migration also commits. --kill-donor crashes the preferred donor replica
// 30 ms later, mid-transfer.
//
// Exit status is non-zero iff any plan fails a checker (or fails to
// complete before the virtual-time horizon), so check.sh can gate on it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "chaos/campaign.hpp"

namespace {

std::uint64_t parse_u64(const char* s) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bad number: %s\n", s);
    std::exit(2);
  }
  return v;
}

void print_outcome(const shadow::chaos::PlanOutcome& outcome, bool verbose) {
  std::printf("plan seed=%llu  events=%zu  injected=%zu  %s  committed=%llu  "
              "virtual=%.2fs  %.0f txn/s\n",
              static_cast<unsigned long long>(outcome.plan.seed), outcome.plan.events.size(),
              outcome.faults_injected, outcome.ok() ? "OK  " : "FAIL",
              static_cast<unsigned long long>(outcome.committed),
              static_cast<double>(outcome.virtual_duration) / 1e6, outcome.txn_per_sec());
  if (outcome.rebalance_required) {
    std::printf("  rebalance: %s\n",
                outcome.rebalanced ? "range split committed" : "RANGE SPLIT DID NOT COMMIT");
  }
  if (verbose || !outcome.ok()) {
    std::printf("  %s\n", outcome.plan.describe().c_str());
  }
  if (!outcome.ok()) {
    if (!outcome.completed) std::printf("  clients did not finish before the horizon\n");
    std::printf("  %s\n", outcome.check.summary().c_str());
    std::printf("  replay: chaos_campaign --replay %llu\n",
                static_cast<unsigned long long>(outcome.plan.seed));
    if (outcome.minimized) {
      std::printf("  minimized to %zu event(s):\n  %s\n", outcome.minimized->events.size(),
                  outcome.minimized->describe().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  shadow::chaos::CampaignConfig config;
  std::optional<std::uint64_t> replay_seed;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--plans") {
      config.plans = parse_u64(next());
    } else if (arg == "--seed") {
      config.seed = parse_u64(next());
    } else if (arg == "--txns") {
      config.txns_per_client = parse_u64(next());
    } else if (arg == "--clients") {
      config.clients = parse_u64(next());
    } else if (arg == "--replay") {
      replay_seed = parse_u64(next());
    } else if (arg == "--shards") {
      config.shards = parse_u64(next());
    } else if (arg == "--cross-shard-pct") {
      config.cross_shard_pct = parse_u64(next());
    } else if (arg == "--read-pct") {
      config.read_pct = parse_u64(next());
    } else if (arg == "--rebalance-at-ms") {
      config.rebalance_at = static_cast<shadow::net::Time>(parse_u64(next())) * 1000;
    } else if (arg == "--kill-donor") {
      config.kill_donor = true;
    } else if (arg == "--no-minimize") {
      config.minimize = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_campaign [--plans N] [--seed S] [--txns T] [--clients C]\n"
                   "                      [--shards N] [--cross-shard-pct P] [--read-pct P]\n"
                   "                      [--rebalance-at-ms T] [--kill-donor]\n"
                   "                      [--replay PLAN_SEED] [--no-minimize] [--verbose]\n");
      return 2;
    }
  }

  if (replay_seed) {
    shadow::chaos::PlanOutcome outcome = shadow::chaos::replay(*replay_seed, config);
    if (!outcome.ok() && config.minimize) {
      outcome.minimized = shadow::chaos::minimize_plan(outcome.plan, config);
    }
    print_outcome(outcome, /*verbose=*/true);
    return outcome.ok() ? 0 : 1;
  }

  std::printf("chaos campaign: %zu plans, campaign seed %llu, %zu clients x %zu txns, "
              "%zu shard(s)\n",
              config.plans, static_cast<unsigned long long>(config.seed), config.clients,
              config.txns_per_client, config.shards);
  const shadow::chaos::CampaignResult result = shadow::chaos::run_campaign(config);
  for (const auto& outcome : result.outcomes) print_outcome(outcome, verbose);

  double virtual_secs = 0.0;
  for (const auto& outcome : result.outcomes) {
    virtual_secs += static_cast<double>(outcome.virtual_duration) / 1e6;
  }
  std::printf("summary: %zu/%zu plans passed, %zu faults survived, %llu txns committed, "
              "%.0f txn/s under faults\n",
              result.outcomes.size() - result.failures, result.outcomes.size(),
              result.total_faults, static_cast<unsigned long long>(result.total_committed),
              virtual_secs == 0.0 ? 0.0 : static_cast<double>(result.total_committed) / virtual_secs);
  return result.ok() ? 0 : 1;
}
