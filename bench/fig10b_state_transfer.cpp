// Fig. 10(b) — "the overhead of state transfer".
//
// Time to transfer the database state from one replica to another as a
// function of database size: 500..500,000 rows, 16-byte rows (3 columns)
// and 1-KB rows (4 columns), shipped in ~50 KB batches; plus the TPC-C
// 1-warehouse transfer the paper reports at 54.5 s (~100 MB).
//
// Paper reference points (16 B / 1 KB rows):
//   5e2: 0.4 / 0.5 s,  5e3: 1.4 / 2.4 s,  5e4: 3.8 / 9.1 s,
//   5e5: 22.6 / 69.6 s. "In all experiments, row insertion speed
//   constitutes the bottleneck of state transfer."
#include <cstdio>
#include <memory>
#include <string>

#include "common/bench_util.hpp"
#include "db/engine.hpp"
#include "db/wire.hpp"
#include "sim/world.hpp"
#include "workload/tpcc.hpp"

namespace shadow::bench {
namespace {

/// Builds a table of `rows` rows of roughly `row_bytes` bytes in `columns`
/// columns, as in the paper's setup.
void load_rows(db::Engine& engine, std::int64_t rows, std::size_t row_bytes,
               std::size_t columns) {
  db::TableSchema schema;
  schema.name = "data";
  schema.columns.push_back({"id", db::ColumnType::kBigInt});
  for (std::size_t c = 1; c < columns; ++c) {
    schema.columns.push_back({"c" + std::to_string(c), db::ColumnType::kVarchar});
  }
  schema.primary_key = {0};
  engine.create_table(schema);

  const std::size_t pad_total = row_bytes > 8 ? row_bytes - 8 : 0;
  const std::size_t pad_per_col = columns > 1 ? pad_total / (columns - 1) : 0;
  const db::TxnId txn = engine.begin();
  for (std::int64_t id = 0; id < rows; ++id) {
    db::Row row{db::Value(id)};
    for (std::size_t c = 1; c < columns; ++c) {
      row.push_back(db::Value(std::string(pad_per_col, 'x')));
    }
    SHADOW_CHECK(engine.execute(txn, db::make_insert("data", std::move(row))).ok());
  }
  SHADOW_CHECK(engine.commit(txn).ok());
}

/// Transfers the full state source → destination through the simulated
/// network (50 KB batches) and returns the virtual elapsed seconds.
double transfer_seconds(db::Engine& source, const db::EngineTraits& dest_traits,
                        obs::Tracer* tracer = nullptr) {
  sim::World world(3);
  const NodeId src = world.add_node("source");
  const NodeId dst = world.add_node("destination");

  auto dest = std::make_shared<db::Engine>(dest_traits);
  bool done = false;
  net::Time done_at = 0;
  std::size_t batches_left = 0;

  world.set_handler(dst, [&](net::NodeContext& ctx, const sim::Message& msg) {
    if (msg.header == "snap-batch") {
      const auto& batch = sim::msg_body<db::Engine::SnapshotBatch>(msg);
      ctx.charge(dest->restore_batch(batch));
      if (tracer != nullptr) {
        tracer->state_transfer(ctx.now(), dst, obs::StatePhase::kBatch, batch.data.size(), src);
      }
      if (--batches_left == 0) {
        done = true;
        done_at = ctx.now();
        if (tracer != nullptr) {
          tracer->state_transfer(ctx.now(), dst, obs::StatePhase::kDone, 0, src);
        }
      }
    }
  });

  world.schedule_timer_for_node(src, 1, [&](net::NodeContext& ctx) {
    // Connection setup + snapshot initiation (the paper's curves carry a
    // fixed offset of a few hundred milliseconds at the smallest sizes).
    ctx.charge(300000);
    const db::Engine::Snapshot snap = source.snapshot(50 * 1024);
    ctx.charge(snap.serialize_cost_us);
    if (tracer != nullptr) {
      tracer->state_transfer(ctx.now(), src, obs::StatePhase::kBegin, 0, dst);
    }
    dest->reset_for_restore(snap.schemas);
    batches_left = snap.batches.size();
    for (const auto& batch : snap.batches) {
      ctx.send(dst, sim::make_msg("snap-batch", batch));
    }
  });
  world.run_until(600000000000ULL);
  SHADOW_CHECK_MSG(done, "transfer did not finish");
  SHADOW_CHECK(dest->total_rows() == source.total_rows());
  return sim::to_sec(done_at);
}

void run_series(const char* name, std::size_t row_bytes, std::size_t columns,
                const double* paper) {
  std::printf("\n-- %s --\n%12s %14s %14s\n", name, "rows", "measured s", "paper s");
  const std::int64_t sizes[] = {500, 5000, 50000, 500000};
  for (int i = 0; i < 4; ++i) {
    db::Engine source(db::make_h2_traits());
    load_rows(source, sizes[i], row_bytes, columns);
    const double secs = transfer_seconds(source, db::make_hsqldb_traits());
    std::printf("%12lld %14.2f %14.1f\n", static_cast<long long>(sizes[i]), secs, paper[i]);
  }
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow::bench;
  print_header("Fig. 10(b) — state transfer time vs. database size (50 KB batches)",
               "paper: 16 B rows 0.4/1.4/3.8/22.6 s; 1 KB rows 0.5/2.4/9.1/69.6 s; "
               "TPC-C 1 warehouse 54.5 s");

  const double paper16[] = {0.4, 1.4, 3.8, 22.6};
  const double paper1k[] = {0.5, 2.4, 9.1, 69.6};
  run_series("16-byte rows (3 columns)", 16, 3, paper16);
  run_series("1-KB rows (4 columns)", 1024, 4, paper1k);

  // TPC-C 1 warehouse (~100 MB of logical data in the paper's deployment).
  {
    shadow::db::Engine source(shadow::db::make_h2_traits());
    shadow::workload::tpcc::load(source, shadow::workload::tpcc::TpccConfig{}, 3);
    shadow::obs::Tracer tracer;
    const double secs = transfer_seconds(source, shadow::db::make_hsqldb_traits(), &tracer);
    std::printf("\n-- TPC-C, 1 warehouse (%zu rows) --\n   measured %.1f s (paper: 54.5 s)\n",
                source.total_rows(), secs);
    print_metrics_block("TPC-C state transfer", tracer);
  }
  return 0;
}
