// Fig. 10(b) — "the overhead of state transfer".
//
// Time to transfer the database state from one replica to another as a
// function of database size: 500..500,000 rows, 16-byte rows (3 columns)
// and 1-KB rows (4 columns), shipped in ~50 KB batches; plus the TPC-C
// 1-warehouse transfer the paper reports at 54.5 s (~100 MB).
//
// Paper reference points (16 B / 1 KB rows):
//   5e2: 0.4 / 0.5 s,  5e3: 1.4 / 2.4 s,  5e4: 3.8 / 9.1 s,
//   5e5: 22.6 / 69.6 s. "In all experiments, row insertion speed
//   constitutes the bottleneck of state transfer."
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/bench_util.hpp"
#include "db/engine.hpp"
#include "db/wire.hpp"
#include "repl/state_transfer.hpp"
#include "sim/world.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"

namespace shadow::bench {
namespace {

/// Builds a table of `rows` rows of roughly `row_bytes` bytes in `columns`
/// columns, as in the paper's setup.
void load_rows(db::Engine& engine, std::int64_t rows, std::size_t row_bytes,
               std::size_t columns) {
  db::TableSchema schema;
  schema.name = "data";
  schema.columns.push_back({"id", db::ColumnType::kBigInt});
  for (std::size_t c = 1; c < columns; ++c) {
    schema.columns.push_back({"c" + std::to_string(c), db::ColumnType::kVarchar});
  }
  schema.primary_key = {0};
  engine.create_table(schema);

  const std::size_t pad_total = row_bytes > 8 ? row_bytes - 8 : 0;
  const std::size_t pad_per_col = columns > 1 ? pad_total / (columns - 1) : 0;
  const db::TxnId txn = engine.begin();
  for (std::int64_t id = 0; id < rows; ++id) {
    db::Row row{db::Value(id)};
    for (std::size_t c = 1; c < columns; ++c) {
      row.push_back(db::Value(std::string(pad_per_col, 'x')));
    }
    SHADOW_CHECK(engine.execute(txn, db::make_insert("data", std::move(row))).ok());
  }
  SHADOW_CHECK(engine.commit(txn).ok());
}

/// Transfers the full state source → destination through the simulated
/// network (50 KB batches) and returns the virtual elapsed seconds.
double transfer_seconds(db::Engine& source, const db::EngineTraits& dest_traits,
                        obs::Tracer* tracer = nullptr) {
  sim::World world(3);
  const NodeId src = world.add_node("source");
  const NodeId dst = world.add_node("destination");

  auto dest = std::make_shared<db::Engine>(dest_traits);
  bool done = false;
  net::Time done_at = 0;
  std::size_t batches_left = 0;

  world.set_handler(dst, [&](net::NodeContext& ctx, const sim::Message& msg) {
    if (msg.header == "snap-batch") {
      const auto& batch = sim::msg_body<db::Engine::SnapshotBatch>(msg);
      ctx.charge(dest->restore_batch(batch));
      if (tracer != nullptr) {
        tracer->state_transfer(ctx.now(), dst, obs::StatePhase::kBatch, batch.data.size(), src);
      }
      if (--batches_left == 0) {
        done = true;
        done_at = ctx.now();
        if (tracer != nullptr) {
          tracer->state_transfer(ctx.now(), dst, obs::StatePhase::kDone, 0, src);
        }
      }
    }
  });

  world.schedule_timer_for_node(src, 1, [&](net::NodeContext& ctx) {
    // Connection setup + snapshot initiation (the paper's curves carry a
    // fixed offset of a few hundred milliseconds at the smallest sizes).
    ctx.charge(300000);
    const db::Engine::Snapshot snap = source.snapshot(50 * 1024);
    ctx.charge(snap.serialize_cost_us);
    if (tracer != nullptr) {
      tracer->state_transfer(ctx.now(), src, obs::StatePhase::kBegin, 0, dst);
    }
    dest->reset_for_restore(snap.schemas);
    batches_left = snap.batches.size();
    for (const auto& batch : snap.batches) {
      ctx.send(dst, sim::make_msg("snap-batch", batch));
    }
  });
  world.run_until(600000000000ULL);
  SHADOW_CHECK_MSG(done, "transfer did not finish");
  SHADOW_CHECK(dest->total_rows() == source.total_rows());
  return sim::to_sec(done_at);
}

void run_series(const char* name, std::size_t row_bytes, std::size_t columns,
                const double* paper) {
  std::printf("\n-- %s --\n%12s %14s %14s\n", name, "rows", "measured s", "paper s");
  const std::int64_t sizes[] = {500, 5000, 50000, 500000};
  for (int i = 0; i < 4; ++i) {
    db::Engine source(db::make_h2_traits());
    load_rows(source, sizes[i], row_bytes, columns);
    const double secs = transfer_seconds(source, db::make_hsqldb_traits());
    std::printf("%12lld %14.2f %14.1f\n", static_cast<long long>(sizes[i]), secs, paper[i]);
  }
}

// ------------------------------------------------ re-sync byte volume (v2) --

// Process-wide codec registry: these headers belong to this benchmark alone.
constexpr const char* kVolBegin2 = "fig-begin2";
constexpr const char* kVolBatch2 = "fig-batch2";
constexpr const char* kVolDone2 = "fig-done2";
constexpr const char* kVolDel2 = "fig-del2";

/// Streams source → dest once through repl::StateTransfer v2 and returns the
/// sender's volume accounting; `tracer` accumulates the repl.* counters the
/// table is read from.
repl::SendStats stream_v2(db::Engine& source, db::Engine& dest, obs::Tracer& tracer,
                          bool compress, std::optional<std::uint64_t> delta_since) {
  sim::World world(5);
  const NodeId src = world.add_node("source");
  const NodeId dst = world.add_node("destination");
  repl::StateTransfer::Receiver rx({&tracer, dst});
  repl::SendStats stats;
  bool finished = false;

  world.set_handler(dst, [&](net::NodeContext& ctx, const sim::Message& m) {
    if (m.header == kVolBegin2) {
      rx.begin_v2(dest, sim::msg_body<repl::SnapBegin2Body>(m));
    } else if (m.header == kVolBatch2) {
      SHADOW_CHECK(rx.on_batch2(ctx, dest, sim::msg_body<repl::SnapBatch2Body>(m), m.from));
    } else if (m.header == kVolDel2) {
      rx.on_delete2(ctx, dest, sim::msg_body<repl::SnapDelete2Body>(m));
    } else if (m.header == kVolDone2) {
      SHADOW_CHECK(rx.complete(sim::msg_body<repl::SnapDone2Body>(m)));
      rx.finish(dest);
      finished = true;
    }
  });
  world.schedule_timer_for_node(src, 1, [&](net::NodeContext& ctx) {
    repl::StateTransfer::SendV2 spec;
    spec.headers = {kVolBegin2, kVolBatch2, kVolDone2, kVolDel2};
    spec.compress = compress;
    spec.delta_since = delta_since;
    spec.done_carries_rows = true;
    spec.tracer = &tracer;
    stats = repl::StateTransfer::send_v2(ctx, source, dst, spec);
  });
  world.run_until(600000000000ULL);
  SHADOW_CHECK_MSG(finished, "v2 stream did not finish");
  SHADOW_CHECK(dest.state_digest() == source.state_digest());
  return stats;
}

/// The Fig. 10(b) byte-volume companion: what a bank-replica re-sync costs on
/// the wire as raw full copy vs. compressed full vs. compressed delta (~1% of
/// accounts touched since the receiver fell behind). Returns false when the
/// 3x gate fails.
bool run_resync_volume(bool gate) {
  std::printf("\n-- bank re-sync byte volume (repl::StateTransfer v2) --\n");
  std::printf("%10s %12s %14s %12s %10s %10s %11s\n", "accounts", "raw full B", "compressed B",
              "delta B", "ratio", "reduction", "full B/row");
  bool ok = true;
  const std::int64_t sizes[] = {1000, 10000, 50000};
  for (const std::int64_t accounts : sizes) {
    db::Engine source(db::make_h2_traits());
    workload::bank::load(source, workload::bank::BankConfig{accounts, 0});
    source.set_state_version(1);

    // Raw full copy: the v1-equivalent baseline.
    obs::Tracer t_raw({.capacity = 1 << 12, .record_messages = false});
    db::Engine dest_raw(db::make_h2_traits());
    stream_v2(source, dest_raw, t_raw, /*compress=*/false, std::nullopt);
    const std::uint64_t raw_full = t_raw.metrics().counter("repl.bytes_wire").value();

    // Compressed full copy.
    obs::Tracer t_full({.capacity = 1 << 12, .record_messages = false});
    db::Engine dest_full(db::make_h2_traits());
    stream_v2(source, dest_full, t_full, /*compress=*/true, std::nullopt);
    const std::uint64_t wire_full = t_full.metrics().counter("repl.bytes_wire").value();

    // Compressed delta: the receiver holds version 1, the source has since
    // touched ~1% of the accounts at version 2.
    obs::Tracer t_seed({.capacity = 1 << 12, .record_messages = false});
    db::Engine dest_delta(db::make_h2_traits());
    stream_v2(source, dest_delta, t_seed, /*compress=*/false, std::nullopt);
    source.set_state_version(2);
    const std::int64_t touched = accounts / 100;
    for (std::int64_t k = 0; k < touched; ++k) {
      const db::TxnId txn = source.begin();
      SHADOW_CHECK(source
                       .execute(txn, db::make_update(workload::bank::kTable, {db::Value(k)},
                                                     {{2, db::SetOp::kAdd, db::Value(
                                                                               std::int64_t{1})}}))
                       .ok());
      SHADOW_CHECK(source.commit(txn).ok());
    }
    obs::Tracer t_delta({.capacity = 1 << 12, .record_messages = false});
    const repl::SendStats delta_stats =
        stream_v2(source, dest_delta, t_delta, /*compress=*/true, std::uint64_t{1});
    SHADOW_CHECK_MSG(delta_stats.delta, "sender fell back to a full copy");
    SHADOW_CHECK(t_delta.metrics().counter("repl.delta_hits").value() == 1);
    const std::uint64_t wire_delta = t_delta.metrics().counter("repl.bytes_wire").value();

    const double ratio = wire_full > 0 ? static_cast<double>(raw_full) / wire_full : 0.0;
    const double reduction = wire_delta > 0 ? static_cast<double>(raw_full) / wire_delta : 0.0;
    std::printf("%10lld %12llu %14llu %12llu %9.1fx %9.1fx %11.1f\n",
                static_cast<long long>(accounts), static_cast<unsigned long long>(raw_full),
                static_cast<unsigned long long>(wire_full),
                static_cast<unsigned long long>(wire_delta), ratio, reduction,
                static_cast<double>(wire_full) / static_cast<double>(accounts));
    if (raw_full < 3 * wire_delta) {
      std::printf("   GATE FAIL: delta+compressed re-sync is only %.1fx below a raw full copy "
                  "(need >= 3x)\n",
                  reduction);
      ok = false;
    }
  }
  if (gate) {
    std::printf("gate: delta+compressed re-sync >= 3x below raw full copy — %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok;
}

}  // namespace
}  // namespace shadow::bench

int main(int argc, char** argv) {
  using namespace shadow::bench;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  if (gate) {
    // check.sh mode: only the byte-volume table, asserted, in seconds.
    return run_resync_volume(/*gate=*/true) ? 0 : 1;
  }

  print_header("Fig. 10(b) — state transfer time vs. database size (50 KB batches)",
               "paper: 16 B rows 0.4/1.4/3.8/22.6 s; 1 KB rows 0.5/2.4/9.1/69.6 s; "
               "TPC-C 1 warehouse 54.5 s");

  const double paper16[] = {0.4, 1.4, 3.8, 22.6};
  const double paper1k[] = {0.5, 2.4, 9.1, 69.6};
  run_series("16-byte rows (3 columns)", 16, 3, paper16);
  run_series("1-KB rows (4 columns)", 1024, 4, paper1k);

  // TPC-C 1 warehouse (~100 MB of logical data in the paper's deployment).
  {
    shadow::db::Engine source(shadow::db::make_h2_traits());
    shadow::workload::tpcc::load(source, shadow::workload::tpcc::TpccConfig{}, 3);
    shadow::obs::Tracer tracer;
    const double secs = transfer_seconds(source, shadow::db::make_hsqldb_traits(), &tracer);
    std::printf("\n-- TPC-C, 1 warehouse (%zu rows) --\n   measured %.1f s (paper: 54.5 s)\n",
                source.total_rows(), secs);
    print_metrics_block("TPC-C state transfer", tracer);
  }
  run_resync_volume(/*gate=*/false);
  return 0;
}
