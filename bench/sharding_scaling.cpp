// Sharded scale-out: aggregate committed txn/s vs. number of consensus
// groups, swept over the cross-shard transaction ratio.
//
// Each shard is a full ReplicationGroup — its own 3-machine broadcast
// service and database replicas — so adding a shard adds machines, the
// scale-out story the paper's single-group design stops short of. Clients
// route through the ShardRouter: single-shard deposits go straight to the
// owning group; adjacent-account transfers (always cross-shard for N > 1)
// run the TOB-ordered 2PC path. Virtual time prices every machine's CPU
// independently, so the measurement reflects the deployment's parallelism
// rather than the bench host's core count (the wall-clock equivalent lives
// in examples/run_cluster.sh — see EXPERIMENTS.md).
//
// Expectation: near-linear aggregate scaling 1→4 shards at 0% cross-shard,
// degrading gracefully as the 2PC ratio grows (every cross-shard transfer
// occupies two groups for three ordered log entries instead of one).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "sim/world.hpp"
#include "workload/bank.hpp"

namespace shadow::bench {
namespace {

using workload::bank::BankConfig;

// Enough clients to push each group toward its ~900 txn/s saturation
// (Fig. 9a saturates near 32 clients): at saturation the aggregate measures
// per-group CPU capacity rather than the 2PC round-trip latency a
// half-idle closed loop would expose.
constexpr std::size_t kTxnsPerClient = 300;
constexpr std::size_t kClientsPerShard = 24;
const BankConfig kBank{4096, 0};

struct ShardedRun {
  std::size_t shards = 0;
  std::size_t cross_pct = 0;
  double txn_per_sec = 0.0;
  double measured_cross_ratio = 0.0;
  std::uint64_t conflict_retries = 0;
  bool check_ok = false;
  std::string check_summary;
};

ShardedRun run_sharded(std::size_t shards, std::size_t cross_pct) {
  sim::World world(41 + shards * 7 + cross_pct);
  obs::Tracer tracer{{.capacity = 1 << 21, .record_messages = false}};
  tracer.attach(world);

  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  core::ClusterOptions opts;
  opts.registry = registry;
  opts.engines = {db::make_h2_traits()};
  opts.loader = [](db::Engine& e) { workload::bank::load(e, kBank); };
  opts.tracer = &tracer;

  core::ShardRouter router(shards);
  router.install_default_extractors();
  router.set_tracer(&tracer);
  std::vector<core::ReplicationGroup> groups;
  for (std::size_t g = 0; g < shards; ++g) {
    core::GroupOptions go;
    go.id = static_cast<core::GroupId>(g);
    if (shards > 1) {
      go.name_prefix = "g" + std::to_string(g) + ".";
      go.metric_scope = "group." + std::to_string(g) + ".";
    }
    // machines left empty: every group allocates its OWN three machines
    // (scale-out), unlike the co-located chaos/cluster deployments.
    go.router = &router;
    groups.push_back(core::make_replication_group(world, opts, go));
  }
  for (std::size_t g = 0; g < shards; ++g) {
    router.set_group_targets(static_cast<core::GroupId>(g), groups[g].tob_nodes,
                             groups[g].replica_nodes);
  }

  std::vector<std::unique_ptr<core::DbClient>> clients;
  const std::size_t n = kClientsPerShard * shards;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = world.add_node("client" + std::to_string(i + 1));
    core::DbClient::Options copts;
    copts.mode = core::DbClient::Mode::kTob;
    copts.router = &router;
    copts.retry_conflict_aborts = true;
    copts.txn_limit = kTxnsPerClient;
    copts.tracer = &tracer;
    auto rng = std::make_shared<Rng>(1000 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts,
        [rng, cross_pct]() {
          if (cross_pct > 0 && rng->next() % 100 < cross_pct) {
            const auto from = static_cast<std::int64_t>(
                rng->next() % static_cast<std::uint64_t>(kBank.accounts));
            return std::make_pair(
                std::string(workload::bank::kTransferProc),
                workload::Params{db::Value(from), db::Value((from + 1) % kBank.accounts),
                                 db::Value(std::int64_t{1})});
          }
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, kBank));
        }));
  }

  for (auto& c : clients) c->start();
  net::Time horizon = 0;
  while (true) {
    horizon += 20000;
    world.run_until(horizon);
    const bool all = std::all_of(clients.begin(), clients.end(),
                                 [](const auto& c) { return c->done(); });
    if (all || horizon > 3000000000ULL) break;
  }

  ShardedRun run;
  run.shards = shards;
  run.cross_pct = cross_pct;
  std::uint64_t committed = 0;
  for (auto& c : clients) {
    committed += c->committed();
    run.conflict_retries += c->conflict_retries();
  }
  run.txn_per_sec = static_cast<double>(committed) * 1e6 / static_cast<double>(world.now());
  run.measured_cross_ratio = router.cross_shard_ratio();
  const obs::CheckResult check = obs::check_trace(tracer.snapshot());
  run.check_ok = check.ok() && check.committed_txns_checked >= committed;
  run.check_summary = check.summary();
  return run;
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using shadow::bench::ShardedRun;
  std::printf("# Sharded scale-out: aggregate committed txn/s (virtual time)\n");
  std::printf("# %zu clients and %zu txns per shard; each shard = 3 own machines\n",
              shadow::bench::kClientsPerShard,
              shadow::bench::kClientsPerShard * shadow::bench::kTxnsPerClient);
  std::printf("%-8s %-10s %-12s %-12s %-10s %-8s\n", "shards", "xs_pct", "txn/s",
              "xs_ratio", "retries", "check");
  bool all_ok = true;
  double base_txn_s = 0.0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t cross : {std::size_t{0}, std::size_t{10}, std::size_t{30}}) {
      const ShardedRun run = shadow::bench::run_sharded(shards, cross);
      std::printf("%-8zu %-10zu %-12.0f %-12.3f %-10llu %-8s\n", run.shards, run.cross_pct,
                  run.txn_per_sec, run.measured_cross_ratio,
                  static_cast<unsigned long long>(run.conflict_retries),
                  run.check_ok ? "ok" : "FAIL");
      if (!run.check_ok) {
        all_ok = false;
        std::printf("  %s\n", run.check_summary.c_str());
      }
      if (shards == 1 && cross == 0) base_txn_s = run.txn_per_sec;
      if (shards == 4 && cross == 10 && base_txn_s > 0.0 &&
          run.txn_per_sec < 2.5 * base_txn_s) {
        all_ok = false;
        std::printf("  FAIL: 4-shard @ 10%% cross-shard is %.2fx the 1-shard baseline "
                    "(acceptance: >= 2.5x)\n",
                    run.txn_per_sec / base_txn_s);
      }
    }
  }
  return all_ok ? 0 : 1;
}
