// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper's evaluation
// (Sec. IV) and prints the measured series next to the paper's reference
// numbers, so the *shape* comparison (who wins, by what factor, where the
// knees are) is visible directly in the output. See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shadow::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_row_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// One point of a latency/throughput curve.
struct CurvePoint {
  std::size_t clients = 0;
  double throughput_per_sec = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double abort_rate = 0.0;
};

inline void print_curve(const std::string& name, const std::vector<CurvePoint>& points,
                        bool with_aborts = false) {
  std::printf("\n-- %s --\n", name.c_str());
  if (with_aborts) {
    std::printf("%8s %14s %14s %12s %10s\n", "clients", "commits/s", "mean lat ms", "p99 ms",
                "aborts");
  } else {
    std::printf("%8s %14s %14s %12s\n", "clients", "throughput/s", "mean lat ms", "p99 ms");
  }
  for (const CurvePoint& p : points) {
    if (with_aborts) {
      std::printf("%8zu %14.1f %14.3f %12.3f %9.1f%%\n", p.clients, p.throughput_per_sec,
                  p.mean_latency_ms, p.p99_latency_ms, p.abort_rate * 100.0);
    } else {
      std::printf("%8zu %14.1f %14.3f %12.3f\n", p.clients, p.throughput_per_sec,
                  p.mean_latency_ms, p.p99_latency_ms);
    }
  }
}

inline double peak_throughput(const std::vector<CurvePoint>& points) {
  double best = 0.0;
  for (const CurvePoint& p : points) best = std::max(best, p.throughput_per_sec);
  return best;
}

/// Prints the per-component counters and latency histograms a Tracer derived
/// from one run (see src/obs/README.md for the metric names).
inline void print_metrics_block(const std::string& name, const obs::MetricsRegistry& metrics) {
  std::printf("\n-- metrics: %s --\n", name.c_str());
  const std::string block = metrics.format();
  std::fputs(block.empty() ? "  (no events recorded)\n" : block.c_str(), stdout);
}

inline void print_metrics_block(const std::string& name, obs::Tracer& tracer) {
  // Fold the process-wide zero-copy counters in so net.batch_encode_count /
  // net.batch_splices / net.batch_bytes_copied appear in the block.
  tracer.sync_batch_stats();
  print_metrics_block(name, tracer.metrics());
  const auto& counters = tracer.metrics().counters();
  const auto counter = [&](const char* n) -> std::uint64_t {
    const auto it = counters.find(n);
    return it != counters.end() ? it->second.value() : 0;
  };
  const std::uint64_t delivered = counter("tob.deliveries");
  if (delivered > 0) {
    // The zero-copy figure of merit: bytes of already-encoded batch content
    // copied per delivered command. 0.00 means every hop spliced the
    // original encode.
    std::printf("  zero-copy: %.2f bytes copied per delivered command "
                "(%llu encodes, %llu splices, %llu bytes copied)\n",
                static_cast<double>(counter("net.batch_bytes_copied")) /
                    static_cast<double>(delivered),
                static_cast<unsigned long long>(counter("net.batch_encode_count")),
                static_cast<unsigned long long>(counter("net.batch_splices")),
                static_cast<unsigned long long>(counter("net.batch_bytes_copied")));
  }
  const auto& histograms = tracer.metrics().histograms();
  const auto adaptive = histograms.find("net.batch_size_adaptive");
  const auto depth = histograms.find("pipeline.queue_depth");
  if (adaptive != histograms.end() || depth != histograms.end()) {
    // The pipelined-mode figure of merit: how far the adaptive batch limit
    // moved under load, and whether the executor thread kept its ring near
    // empty (p99 depth near the ring capacity means execution, not
    // ordering, was the bottleneck).
    std::printf("  pipeline:");
    if (adaptive != histograms.end()) {
      std::printf(" batch limit mean %.1f max %llu", adaptive->second.mean(),
                  static_cast<unsigned long long>(adaptive->second.max()));
    }
    if (depth != histograms.end()) {
      std::printf("%s queue depth p50 %llu p99 %llu",
                  adaptive != histograms.end() ? "," : "",
                  static_cast<unsigned long long>(depth->second.percentile(0.50)),
                  static_cast<unsigned long long>(depth->second.percentile(0.99)));
    }
    std::printf("\n");
  }
}

}  // namespace shadow::bench
