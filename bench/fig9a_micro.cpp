// Fig. 9(a) — micro-benchmark: latency vs. committed update transactions/s.
//
// Bank-accounts database (50,000 rows of 16 bytes), update transactions
// depositing into a random account, 1..32 closed-loop clients. Systems:
//   ShadowDB-PBR   (H2 everywhere, broadcast service interpreted — recovery only)
//   ShadowDB-SMR   (H2 everywhere, compiled broadcast service orders everything)
//   H2-repl        (eager statement replication, table locks held across sync)
//   MySQL-repl     (semi-sync, memory engine: table locks)
//   H2-stdalone    (single database)
//
// Paper reference: ShadowDB-PBR peaks above 4,600 txn/s ≈ 72 % of standalone
// H2; MySQL peaks at 3,900 then declines; H2-repl plateaus early on lock
// timeouts; ShadowDB-SMR ≈ 760 txn/s, CPU-bound by the co-located Lisp
// service.
#include <functional>
#include <memory>

#include "sim/world.hpp"
#include "baselines/baseline_server.hpp"
#include "common/bench_util.hpp"
#include "core/shadowdb.hpp"
#include "obs/checker.hpp"
#include "workload/bank.hpp"

namespace shadow::bench {
namespace {

using workload::bank::BankConfig;

constexpr std::size_t kTxnsPerClient = 1500;  // paper: 35,000 (scaled for runtime)
const BankConfig kBank{50000, 0};

struct ClientFleet {
  std::vector<std::unique_ptr<core::DbClient>> clients;

  void add(sim::World& world, const core::DbClient::Options& options, std::size_t i) {
    const NodeId node = world.add_node("client" + std::to_string(i));
    auto rng = std::make_shared<Rng>(1000 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, options, [rng]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, kBank));
        }));
  }

  CurvePoint finish(sim::World& world, std::size_t n_clients) {
    for (auto& c : clients) c->start();
    // Run to completion (closed loop, fixed transaction count per client).
    net::Time horizon = 0;
    net::Time first_done = 0;
    while (true) {
      horizon += 20000;  // 20 ms resolution on the completion time
      world.run_until(horizon);
      const bool all = std::all_of(clients.begin(), clients.end(),
                                   [](const auto& c) { return c->done(); });
      if (all || horizon > 3000000000ULL) {
        first_done = world.now();
        break;
      }
    }
    CurvePoint point;
    point.clients = n_clients;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    double lat = 0.0;
    for (auto& c : clients) {
      committed += c->committed();
      aborted += c->aborted();
      lat += c->latencies().mean_ms() * static_cast<double>(c->committed() + c->aborted());
    }
    point.throughput_per_sec =
        static_cast<double>(committed) * 1e6 / static_cast<double>(first_done);
    point.mean_latency_ms =
        committed + aborted > 0 ? lat / static_cast<double>(committed + aborted) : 0.0;
    point.abort_rate = committed + aborted > 0
                           ? static_cast<double>(aborted) / static_cast<double>(committed + aborted)
                           : 0.0;
    return point;
  }
};

std::shared_ptr<const workload::ProcedureRegistry> registry() {
  auto r = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*r);
  return r;
}

void bank_loader(db::Engine& engine) { workload::bank::load(engine, kBank); }

CurvePoint run_pbr(std::size_t n, obs::Tracer* tracer = nullptr) {
  sim::World world(7 + n);
  if (tracer != nullptr) tracer->attach(world);
  core::ClusterOptions opts;
  opts.registry = registry();
  opts.loader = bank_loader;
  opts.engines = {db::make_h2_traits()};  // "deploy ShadowDB with H2 both at the
                                          // primary and at the backup" (fairness)
  opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;  // recovery traffic only
  opts.tracer = tracer;
  core::PbrCluster cluster = core::make_pbr_cluster(world, opts);
  ClientFleet fleet;
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kDirect;
  copts.targets = cluster.request_targets();
  copts.txn_limit = kTxnsPerClient;
  copts.tracer = tracer;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_smr(std::size_t n, obs::Tracer* tracer = nullptr) {
  sim::World world(11 + n);
  if (tracer != nullptr) tracer->attach(world);
  core::ClusterOptions opts;
  opts.registry = registry();
  opts.loader = bank_loader;
  opts.engines = {db::make_h2_traits()};
  opts.tob_tier = gpm::ExecutionTier::kCompiled;  // the Lisp service
  opts.tracer = tracer;
  core::SmrCluster cluster = core::make_smr_cluster(world, opts);
  ClientFleet fleet;
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kTob;
  copts.txn_limit = kTxnsPerClient;
  copts.tracer = tracer;
  // Spread clients across the service frontends; non-leader nodes relay to
  // the Paxos leader, so this costs no slot races.
  const auto& frontends = cluster.broadcast_targets();
  for (std::size_t i = 0; i < n; ++i) {
    copts.targets = {frontends[i % frontends.size()]};
    fleet.add(world, copts, i);
  }
  return fleet.finish(world, n);
}

CurvePoint run_standalone(std::size_t n) {
  sim::World world(13 + n);
  auto engine = std::make_shared<db::Engine>(db::make_h2_traits());
  bank_loader(*engine);
  baselines::StandaloneDb dbx = baselines::make_standalone(world, engine, registry());
  ClientFleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_h2_repl(std::size_t n) {
  sim::World world(17 + n);
  baselines::ReplicatedDb dbx = baselines::make_h2_repl(world, registry(), bank_loader);
  ClientFleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 10000000;  // lock waits under contention are long
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_mysql_repl(std::size_t n) {
  sim::World world(19 + n);
  baselines::ReplicatedDb dbx = baselines::make_mysql_repl(
      world, registry(), bank_loader, db::make_mysql_memory_traits());
  ClientFleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 10000000;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

void run_system(const char* name, const std::function<CurvePoint(std::size_t)>& runner,
                const std::vector<std::size_t>& loads, bool aborts = false) {
  std::vector<CurvePoint> curve;
  for (std::size_t n : loads) curve.push_back(runner(n));
  print_curve(name, curve, aborts);
  std::printf("   peak committed throughput: %.0f txn/s\n", peak_throughput(curve));
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow::bench;
  print_header(
      "Fig. 9(a) — micro-benchmark (50k accounts x 16 B, deposit transactions)",
      "paper peaks: H2-stdalone ~6.4k; ShadowDB-PBR >4.6k (72%); MySQL-repl 3.9k then "
      "declining; H2-repl plateaus early with lock timeouts; ShadowDB-SMR 760");

  const std::vector<std::size_t> loads{1, 2, 4, 8, 16, 24, 32};
  run_system("H2-stdalone", run_standalone, loads);
  run_system("ShadowDB-PBR (H2 replicas)", [](std::size_t n) { return run_pbr(n); }, loads);
  run_system("ShadowDB-SMR (H2 replicas)", [](std::size_t n) { return run_smr(n); }, loads);
  run_system("MySQL-repl (memory engine, semi-sync)", run_mysql_repl, loads, true);
  run_system("H2-repl (eager, table locks)", run_h2_repl, loads, true);

  // Instrumented re-runs of one representative point per ShadowDB variant:
  // the tracer derives per-component counters and latency histograms, and the
  // offline checker replays the SMR trace for the paper's correctness
  // properties (total order, at-most-once, strict serializability).
  {
    shadow::obs::Tracer tracer({.capacity = 1 << 20, .record_messages = false});
    run_pbr(8, &tracer);
    print_metrics_block("ShadowDB-PBR, 8 clients", tracer);
  }
  {
    shadow::obs::Tracer tracer({.capacity = 1 << 20, .record_messages = false});
    run_smr(8, &tracer);
    print_metrics_block("ShadowDB-SMR, 8 clients", tracer);
    const shadow::obs::CheckResult check = shadow::obs::check_trace(tracer.snapshot());
    std::printf("  %s\n", check.summary().c_str());
  }
  return 0;
}
