// Ablations of the design choices DESIGN.md §5 calls out:
//
//   A1  batching in the broadcast service (on / off)
//   A2  consensus module switch under the same TOB (Paxos vs TwoThird)
//   A3  PBR state-transfer overlap (resume after first recovered backup
//       vs waiting for all)
//   A4  lock granularity (table vs row) under a contended update workload
//   A5  the program optimizer (interpreted vs interpreted-opt broadcast)
//   A6  replication protocol (PBR acks vs chain replication pipelining),
//       the extension module of core/chain.hpp
#include <cstdio>
#include <memory>

#include "sim/world.hpp"
#include "baselines/baseline_server.hpp"
#include "common/bench_util.hpp"
#include "common/stats.hpp"
#include "core/shadowdb.hpp"
#include <optional>
#include "workload/bank.hpp"

namespace shadow::bench {
namespace {

// ------------------------------------------------- TOB throughput helper --

struct TobRun {
  double throughput = 0.0;
  double mean_latency_ms = 0.0;
};

TobRun run_tob(tob::Protocol protocol, std::size_t batch_max, std::size_t n_clients,
               gpm::ExecutionTier tier) {
  sim::World world(5);
  tob::TobConfig config;
  config.protocol = protocol;
  config.profile.tier = tier;
  config.batch_max = batch_max;
  const std::size_t nodes = protocol == tob::Protocol::kPaxos ? 3 : 4;
  for (std::size_t i = 0; i < nodes; ++i) {
    config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
  }
  if (tier != gpm::ExecutionTier::kCompiled) {
    config.paxos.leader_timeout = 5000000;
    config.paxos.scout_retry = 2000000;
  }
  tob::TobService service = tob::make_service(world, config);

  struct Client {
    NodeId node;
    ClientId id;
    RequestSeq seq = 0;
    net::Time sent = 0;
    std::uint64_t done = 0;
    LatencyStats lat;
  };
  std::vector<Client> clients(n_clients);
  const net::Time warmup = tier == gpm::ExecutionTier::kCompiled ? 1000000 : 15000000;
  const net::Time horizon = tier == gpm::ExecutionTier::kCompiled ? 9000000 : 90000000;
  for (std::size_t i = 0; i < n_clients; ++i) {
    Client& c = clients[i];
    c.node = world.add_node("c" + std::to_string(i));
    c.id = ClientId{static_cast<std::uint32_t>(i + 1)};
    const NodeId target = config.nodes[0];
    auto send_next = std::make_shared<std::function<void(net::NodeContext&)>>();
    *send_next = [&c, target](net::NodeContext& ctx) {
      ++c.seq;
      c.sent = ctx.now();
      ctx.send(target, sim::make_msg(tob::kBroadcastHeader,
                                     tob::BroadcastBody{tob::Command{c.id, c.seq,
                                                                     std::string(140, 'x')}}));
    };
    world.set_handler(c.node, [&c, warmup, send_next](net::NodeContext& ctx,
                                                      const sim::Message& msg) {
      if (msg.header != tob::kAckHeader) return;
      const auto& ack = sim::msg_body<tob::AckBody>(msg);
      if (ack.client != c.id || ack.seq != c.seq) return;
      if (c.sent >= warmup) {
        ++c.done;
        c.lat.add(ctx.now() - c.sent);
      }
      (*send_next)(ctx);
    });
    world.schedule_timer_for_node(c.node, 1, [send_next](net::NodeContext& ctx) {
      (*send_next)(ctx);
    });
  }
  world.run_until(horizon);
  TobRun out;
  std::uint64_t total = 0;
  double lat = 0.0;
  for (Client& c : clients) {
    total += c.done;
    lat += c.lat.mean_ms() * static_cast<double>(c.done);
  }
  out.throughput = static_cast<double>(total) * 1e6 / static_cast<double>(horizon - warmup);
  out.mean_latency_ms = total > 0 ? lat / static_cast<double>(total) : 0.0;
  return out;
}

// ------------------------------------------------- PBR recovery helper ----

double pbr_downtime_seconds(bool overlap) {
  sim::World world(71);
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{50000, 0};
  core::ClusterOptions opts;
  opts.registry = registry;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  opts.engines = {db::make_h2_traits()};
  opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
  // 3 active replicas + 1 spare: after the primary crash the new
  // configuration has 3 members — two up-to-date survivors and the spare,
  // which needs a snapshot. Overlap lets the primary resume as soon as the
  // up-to-date survivor confirms, instead of waiting out the transfer.
  opts.machines = 4;
  opts.db_replicas = 3;
  opts.db_spares = 1;
  opts.pbr.suspect_timeout = 2000000;
  opts.pbr.hb_period = 400000;
  opts.pbr.overlap_state_transfer = overlap;
  // Small cache so a lagging backup needs a snapshot, not catch-up.
  opts.pbr.txn_cache_max = 64;
  core::PbrCluster cluster = core::make_pbr_cluster(world, opts);

  net::Time last_commit_before = 0;
  net::Time first_commit_after = 0;
  const NodeId node = world.add_node("client");
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kDirect;
  copts.targets = cluster.request_targets();
  copts.txn_limit = 1000000;
  copts.retry_timeout = 400000;
  auto rng = std::make_shared<Rng>(3);
  core::DbClient client(world, node, ClientId{1}, copts, [rng, bank]() {
    return std::make_pair(std::string(workload::bank::kDepositProc),
                          workload::bank::make_deposit(*rng, bank));
  });
  const net::Time crash_at = 1000000;
  client.set_commit_hook([&](net::Time t) {
    if (t <= crash_at) {
      last_commit_before = t;
    } else if (first_commit_after == 0) {
      first_commit_after = t;
    }
  });
  client.start();
  world.run_until(crash_at);
  // Crash a backup: the two survivors reconfigure; the replacement backup is
  // behind and needs state transfer. With overlap the primary resumes after
  // the first up-to-date backup acknowledges.
  world.crash(cluster.replica_nodes[0]);  // the primary: forces full recovery
  world.run_until(120000000);
  if (first_commit_after == 0) return -1.0;
  return sim::to_sec(first_commit_after - last_commit_before);
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow::bench;
  using shadow::gpm::ExecutionTier;

  print_header("Ablations", "design choices from DESIGN.md §5");

  // -- A1: batching -----------------------------------------------------------
  {
    const TobRun on = run_tob(shadow::tob::Protocol::kPaxos, 64, 24, ExecutionTier::kCompiled);
    const TobRun off = run_tob(shadow::tob::Protocol::kPaxos, 1, 24, ExecutionTier::kCompiled);
    std::printf("\nA1 batching (compiled TOB, 24 clients):\n");
    std::printf("   batch<=64: %7.0f msg/s  %6.2f ms\n", on.throughput, on.mean_latency_ms);
    std::printf("   batch=1:   %7.0f msg/s  %6.2f ms\n", off.throughput, off.mean_latency_ms);
    std::printf("   -> batching gives %.1fx throughput\n", on.throughput / off.throughput);
  }

  // -- A2: consensus module switch ---------------------------------------------
  {
    const TobRun paxos = run_tob(shadow::tob::Protocol::kPaxos, 64, 8, ExecutionTier::kCompiled);
    const TobRun tt = run_tob(shadow::tob::Protocol::kTwoThird, 64, 8, ExecutionTier::kCompiled);
    std::printf("\nA2 consensus module under the same TOB (8 clients):\n");
    std::printf("   Paxos (3 nodes, f=1):    %7.0f msg/s  %6.2f ms\n", paxos.throughput,
                paxos.mean_latency_ms);
    std::printf("   TwoThird (4 nodes, f=1): %7.0f msg/s  %6.2f ms\n", tt.throughput,
                tt.mean_latency_ms);
  }

  // -- A5: the optimizer --------------------------------------------------------
  {
    const TobRun unopt = run_tob(shadow::tob::Protocol::kPaxos, 64, 8,
                                 ExecutionTier::kInterpreted);
    const TobRun opt = run_tob(shadow::tob::Protocol::kPaxos, 64, 8,
                               ExecutionTier::kInterpretedOpt);
    std::printf("\nA5 program optimizer (interpreted TOB, 8 clients):\n");
    std::printf("   unoptimized: %7.1f msg/s  %7.1f ms\n", unopt.throughput,
                unopt.mean_latency_ms);
    std::printf("   optimized:   %7.1f msg/s  %7.1f ms\n", opt.throughput,
                opt.mean_latency_ms);
    std::printf("   -> optimizer speedup %.2fx (paper: \"a factor of two or more\")\n",
                unopt.mean_latency_ms / opt.mean_latency_ms);
  }

  // -- A3: PBR state-transfer overlap -------------------------------------------
  {
    const double with_overlap = pbr_downtime_seconds(true);
    const double without = pbr_downtime_seconds(false);
    std::printf("\nA3 PBR recovery overlap (3 replicas, primary crash, 50k-row snapshot):\n");
    std::printf("   resume after first recovered backup: %6.2f s downtime\n", with_overlap);
    std::printf("   wait for all backups:                %6.2f s downtime\n", without);
  }

  // -- A4: lock granularity ------------------------------------------------------
  {
    using namespace shadow;
    auto run_locks = [](db::EngineTraits traits) {
      sim::World world(9);
      auto registry = std::make_shared<workload::ProcedureRegistry>();
      workload::bank::register_procedures(*registry);
      const workload::bank::BankConfig bank{1000, 0};
      auto engine = std::make_shared<db::Engine>(traits);
      workload::bank::load(*engine, bank);
      baselines::BaselineConfig config;
      config.per_statement_delay = 400;  // slow client: long lock holds
      baselines::StandaloneDb dbx = baselines::make_standalone(world, engine, registry, config);
      std::vector<std::unique_ptr<core::DbClient>> clients;
      for (std::size_t i = 0; i < 12; ++i) {
        const NodeId node = world.add_node("c" + std::to_string(i));
        core::DbClient::Options copts;
        copts.targets = {dbx.node()};
        copts.txn_limit = 200;
        copts.retry_timeout = 20000000;
        auto rng = std::make_shared<Rng>(100 + i);
        clients.push_back(std::make_unique<core::DbClient>(
            world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts,
            [rng, bank]() {
              return std::make_pair(std::string(workload::bank::kTransferProc),
                                    workload::Params{db::Value(static_cast<std::int64_t>(
                                                         rng->uniform(0, 999))),
                                                     db::Value(static_cast<std::int64_t>(
                                                         rng->uniform(0, 999))),
                                                     db::Value(1)});
            }));
        clients.back()->start();
      }
      net::Time horizon = 0;
      while (true) {
        horizon += 20000;
        world.run_until(horizon);
        const bool all = std::all_of(clients.begin(), clients.end(),
                                     [](const auto& c) { return c->done(); });
        if (all || horizon > 600000000) break;
      }
      std::uint64_t committed = 0;
      double lat = 0;
      for (auto& c : clients) {
        committed += c->committed();
        lat += c->latencies().mean_ms();
      }
      return std::make_pair(static_cast<double>(committed) / sim::to_sec(world.now()),
                            lat / 12.0);
    };
    // Same cost profile; only the lock granularity differs.
    db::EngineTraits table_locks = db::make_h2_traits();
    table_locks.read_committed = false;  // isolate pure granularity effects
    db::EngineTraits row_locks = table_locks;
    row_locks.row_locks = true;
    row_locks.name = "h2like-rowlocks";
    const auto [tput_table, lat_table] = run_locks(table_locks);
    const auto [tput_row, lat_row] = run_locks(row_locks);
    std::printf("\nA4 lock granularity (12 clients, 2-statement transfers, slow stmts):\n");
    std::printf("   table locks: %7.0f txn/s  %7.2f ms\n", tput_table, lat_table);
    std::printf("   row locks:   %7.0f txn/s  %7.2f ms\n", tput_row, lat_row);
    std::printf("   -> row locks give %.1fx under contention\n", tput_row / tput_table);
  }
  // -- A6: PBR vs chain replication ----------------------------------------------
  {
    using namespace shadow;
    auto run_protocol = [](bool chain) {
      sim::World world(27);
      auto registry = std::make_shared<workload::ProcedureRegistry>();
      workload::bank::register_procedures(*registry);
      const workload::bank::BankConfig bank{20000, 0};
      core::ClusterOptions opts;
      opts.registry = registry;
      opts.machines = 4;
      opts.db_replicas = 3;  // a 3-link chain vs primary + 2 backups
      opts.db_spares = 0;
      opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
      opts.engines = {db::make_h2_traits()};
      opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
      std::optional<core::PbrCluster> pbr;
      std::optional<core::ChainCluster> chain_cluster;
      std::vector<NodeId> targets;
      if (chain) {
        chain_cluster.emplace(core::make_chain_cluster(world, opts));
        targets = chain_cluster->request_targets();
      } else {
        pbr.emplace(core::make_pbr_cluster(world, opts));
        targets = pbr->request_targets();
      }
      std::vector<std::unique_ptr<core::DbClient>> clients;
      for (std::size_t i = 0; i < 16; ++i) {
        const NodeId node = world.add_node("c" + std::to_string(i));
        core::DbClient::Options copts;
        copts.mode = core::DbClient::Mode::kDirect;
        copts.targets = targets;
        copts.txn_limit = 600;
        auto rng = std::make_shared<Rng>(900 + i);
        clients.push_back(std::make_unique<core::DbClient>(
            world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts,
            [rng, bank]() {
              return std::make_pair(std::string(workload::bank::kDepositProc),
                                    workload::bank::make_deposit(*rng, bank));
            }));
        clients.back()->start();
      }
      net::Time horizon = 0;
      while (true) {
        horizon += 20000;
        world.run_until(horizon);
        const bool all = std::all_of(clients.begin(), clients.end(),
                                     [](const auto& c) { return c->done(); });
        if (all || horizon > 600000000) break;
      }
      double lat = 0;
      std::uint64_t committed = 0;
      for (auto& c : clients) {
        committed += c->committed();
        lat += c->latencies().mean_ms();
      }
      return std::make_pair(
          static_cast<double>(committed) * 1e6 / static_cast<double>(world.now()),
          lat / 16.0);
    };
    const auto [pbr_tput, pbr_lat] = run_protocol(false);
    const auto [chain_tput, chain_lat] = run_protocol(true);
    std::printf("\nA6 replication protocol (3 replicas, 16 clients, update-only):\n");
    std::printf("   PBR (primary + ack collection): %7.0f txn/s  %6.2f ms\n", pbr_tput,
                pbr_lat);
    std::printf("   chain (head->tail pipeline):    %7.0f txn/s  %6.2f ms\n", chain_tput,
                chain_lat);
    std::printf("   -> chain trades latency (longer pipe) against the primary's ack load\n");
  }
  return 0;
}
