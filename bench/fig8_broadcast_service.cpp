// Fig. 8 — "The performance of the broadcast service with Paxos."
//
// Paxos on three nodes (f = 1), 140-byte payloads, batching enabled,
// 1..43 closed-loop clients. Three execution tiers of the generated code:
//   interpreted       (unoptimized program, SML-style interpreter)
//   interpreted-opt   (optimizer-fused program, same interpreter)
//   compiled          (fused program translated and compiled — the Lisp path)
//
// Paper reference points: 1-client latency 122 / 69.4 / 8.8 ms; maximum
// throughput ≈ 27 / 65 / 900 delivered messages per second; all tiers
// CPU-bound at their peak.
#include <memory>

#include "sim/world.hpp"
#include "common/bench_util.hpp"
#include "common/stats.hpp"
#include "tob/tob.hpp"

namespace shadow::bench {
namespace {

using tob::Protocol;
using tob::TobConfig;

/// Closed-loop broadcast client: sends one 140-byte message, waits for the
/// delivery notification (tob-ack), repeats.
class BroadcastClient {
 public:
  BroadcastClient(sim::World& world, NodeId self, ClientId id, NodeId target,
                  net::Time measure_from)
      : world_(world), self_(self), id_(id), target_(target), measure_from_(measure_from) {
    world_.set_handler(self_, [this](net::NodeContext& ctx, const sim::Message& msg) {
      if (msg.header != tob::kAckHeader) return;
      const auto& ack = sim::msg_body<tob::AckBody>(msg);
      if (ack.client != id_ || ack.seq != seq_) return;
      if (sent_at_ >= measure_from_) {
        latencies_.add(ctx.now() - sent_at_);
        ++delivered_;
      }
      send_next(ctx);
    });
    world_.schedule_timer_for_node(self_, world_.now() + 1,
                                   [this](net::NodeContext& ctx) { send_next(ctx); });
  }

  std::uint64_t delivered() const { return delivered_; }
  shadow::LatencyStats& latencies() { return latencies_; }

 private:
  void send_next(net::NodeContext& ctx) {
    ++seq_;
    tob::BroadcastBody body{
        tob::Command{id_, seq_, std::string(140, 'x')}};  // 140-byte payload
    sent_at_ = ctx.now();
    ctx.send(target_, sim::make_msg(tob::kBroadcastHeader, std::move(body)));
  }

  sim::World& world_;
  NodeId self_;
  ClientId id_;
  NodeId target_;
  net::Time measure_from_;
  RequestSeq seq_ = 0;
  net::Time sent_at_ = 0;
  std::uint64_t delivered_ = 0;
  shadow::LatencyStats latencies_;
};

CurvePoint run_point(gpm::ExecutionTier tier, std::size_t n_clients,
                     obs::Tracer* tracer = nullptr) {
  sim::World world(42 + n_clients);
  if (tracer != nullptr) tracer->attach(world);
  TobConfig config;
  config.protocol = Protocol::kPaxos;
  config.profile.tier = tier;
  config.tracer = tracer;
  config.paxos.tracer = tracer;
  // Failure-detection timeouts must sit well above per-message processing
  // times, which are ~30x larger under interpretation: otherwise passive
  // leaders misread queueing delay as a crash and duel with scouts.
  if (tier != gpm::ExecutionTier::kCompiled) {
    config.paxos.leader_timeout = 5000000;   // 5 s
    config.paxos.scout_retry = 2000000;      // 2 s
    config.tick_period = 20000;
  }
  for (int i = 0; i < 3; ++i) {
    config.nodes.push_back(world.add_node("tob" + std::to_string(i)));
  }
  tob::TobService service = tob::make_service(world, config);

  // Interpreted tiers are ~30x slower: scale the horizon so every point
  // gets enough completed broadcasts to be meaningful.
  const net::Time warmup = tier == gpm::ExecutionTier::kCompiled ? 2000000 : 20000000;
  const net::Time horizon = tier == gpm::ExecutionTier::kCompiled ? 12000000 : 140000000;

  const NodeId client_machine_node = world.add_node("clients");  // placement anchor
  const sim::MachineId client_machine = world.machine_of(client_machine_node);
  std::vector<std::unique_ptr<BroadcastClient>> clients;
  for (std::size_t i = 0; i < n_clients; ++i) {
    const NodeId node = world.add_node("client" + std::to_string(i), client_machine);
    // All clients talk to one frontend (concurrent proposers for the same
    // slot would just lose the Paxos race and repropose).
    clients.push_back(std::make_unique<BroadcastClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, config.nodes[0], warmup));
  }
  world.run_until(horizon);

  CurvePoint point;
  point.clients = n_clients;
  std::uint64_t delivered = 0;
  double lat_weighted = 0.0;
  for (auto& c : clients) {
    delivered += c->delivered();
    lat_weighted += c->latencies().mean_ms() * static_cast<double>(c->delivered());
  }
  point.throughput_per_sec =
      static_cast<double>(delivered) * 1e6 / static_cast<double>(horizon - warmup);
  point.mean_latency_ms = delivered > 0 ? lat_weighted / static_cast<double>(delivered) : 0.0;
  return point;
}

void run_tier(const char* name, gpm::ExecutionTier tier, const std::vector<std::size_t>& loads) {
  std::vector<CurvePoint> curve;
  for (std::size_t n : loads) curve.push_back(run_point(tier, n));
  print_curve(name, curve);
  std::printf("   1-client latency %.1f ms, peak throughput %.0f msg/s\n",
              curve.front().mean_latency_ms, peak_throughput(curve));
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow::bench;
  using shadow::gpm::ExecutionTier;
  print_header("Fig. 8 — broadcast service latency vs. delivered messages/s",
               "paper: interpreted 122 ms / 27 msg/s; interpreted-opt 69.4 ms / 65 msg/s; "
               "compiled 8.8 ms / 900 msg/s");

  run_tier("interpreted (unoptimized program)", ExecutionTier::kInterpreted,
           {1, 2, 4, 8, 16, 28, 43});
  run_tier("interpreted-opt (optimized program)", ExecutionTier::kInterpretedOpt,
           {1, 2, 4, 8, 16, 28, 43});
  run_tier("compiled (Lisp path)", ExecutionTier::kCompiled, {1, 2, 4, 8, 16, 28, 43});

  // Re-run one representative point with the trace recorder attached and
  // print the per-component counters/histograms it derives (decide latency,
  // batch sizes, messages on the wire).
  shadow::obs::Tracer tracer({.capacity = 1 << 18, .record_messages = true});
  run_point(ExecutionTier::kCompiled, 16, &tracer);
  print_metrics_block("compiled tier, 16 clients", tracer);
  return 0;
}
