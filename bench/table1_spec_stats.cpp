// Table I — statistics on specification, verification and code generation.
//
// The paper reports, per module (CLK, TwoThird Consensus, Paxos-Synod,
// Broadcast Service): EventML spec size, generated LoE spec and GPM program
// sizes (in Nuprl AST nodes), optimized GPM size, correctness-property
// statement size, and how many lemmas were proved automatically vs manually.
//
// Our reproduction measures what the substituted toolchain actually
// produces (DESIGN.md §2):
//   * CLK is a real embedded-DSL specification: we print its measured AST
//     node counts before/after the optimizer and its abstract work weights
//     (the analogue of generated-program size).
//   * TwoThird / Paxos-Synod / Broadcast are native GPM components whose
//     per-message work model is anchored to the paper's published GPM sizes;
//     we print those anchors alongside the number of machine-checked
//     properties (the analogue of proved lemmas) and how they are checked
//     (automatic on every run vs. scenario-driven property tests).
#include <cstdio>

#include "common/bench_util.hpp"
#include "consensus/exec_profile.hpp"
#include "eventml/optimizer.hpp"
#include "eventml/specs/clk.hpp"
#include "eventml/specs/two_third.hpp"

int main() {
  using namespace shadow;
  bench::print_header(
      "Table I — specification / verification / code-generation statistics",
      "paper: CLK 79N spec, 590N LoE, 452N GPM, 249N opt, 1A/3M lemmas; TwoThird 646N, "
      "1343N GPM, 8A/6M; Paxos-Synod 1729N, 2625N GPM, 24A/75M; Broadcast 820N, 1352N GPM, "
      "0A/22M");

  // -- CLK: measured from the embedded DSL -----------------------------------
  {
    eventml::Spec spec = eventml::specs::make_clk_spec(
        {{NodeId{0}},
         [](NodeId, const eventml::ValuePtr& v) { return std::make_pair(v, NodeId{0}); }});
    const eventml::OptimizeResult opt = eventml::optimize(spec.main);
    std::printf("\nCLK (measured from the embedded EventML DSL):\n");
    std::printf("  %-38s %llu nodes (paper EventML AST: 79)\n", "specification size",
                static_cast<unsigned long long>(opt.before.total_nodes));
    std::printf("  %-38s %llu work units (paper GPM: 452N)\n", "generated program weight",
                static_cast<unsigned long long>(opt.before.total_weight));
    std::printf("  %-38s %llu distinct nodes, %llu work units (paper opt GPM: 249N)\n",
                "optimized program",
                static_cast<unsigned long long>(opt.after.distinct_nodes),
                static_cast<unsigned long long>(opt.after.total_weight));
    std::printf("  %-38s %zu (progress strict_inc; Clock Condition)\n",
                "correctness properties", spec.properties.size());
    std::printf("  %-38s checked on every recorded execution (paper: 1 auto / 3 manual "
                "lemmas)\n", "verification mode");
  }

  // -- TwoThird: also measured from the embedded DSL ---------------------------
  {
    std::vector<NodeId> locs{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
    eventml::Spec spec = eventml::specs::make_two_third_spec({locs});
    const eventml::OptimizeResult opt = eventml::optimize(spec.main);
    std::printf("\nTwoThird Consensus (measured from the embedded EventML DSL):\n");
    std::printf("  %-38s %llu nodes (paper EventML AST: 646)\n", "specification size",
                static_cast<unsigned long long>(opt.before.total_nodes));
    std::printf("  %-38s %llu work units (paper GPM: 1343N)\n", "generated program weight",
                static_cast<unsigned long long>(opt.before.total_weight));
    std::printf("  %-38s %llu distinct nodes, %llu work units\n", "optimized program",
                static_cast<unsigned long long>(opt.after.distinct_nodes),
                static_cast<unsigned long long>(opt.after.total_weight));
    std::printf("  %-38s %zu (agreement, validity, integrity, round progress)\n",
                "correctness properties", spec.properties.size());
    std::printf("  %-38s checked per execution + seeded crash sweeps (paper: 8A/6M)\n",
                "verification mode");
  }

  // -- the generated-code components ------------------------------------------
  struct ComponentRow {
    const char* name;
    unsigned paper_eventml;
    unsigned long long program_work;
    unsigned paper_auto;
    unsigned paper_manual;
    const char* properties;
  };
  const ComponentRow rows[] = {
      {"TwoThird Consensus (multi-instance, native GPM)", 646,
       consensus::kTwoThirdProgramWork, 8, 6,
       "agreement, validity, integrity (SafetyRecorder, every run) + "
       "seeded crash-schedule sweeps"},
      {"Paxos-Synod", 1729, consensus::kSynodProgramWork, 24, 75,
       "agreement, validity, integrity, promise monotonicity, accept-above-"
       "promise, chosen-value stability + failover property tests"},
      {"Broadcast Service", 820, consensus::kBroadcastProgramWork, 0, 22,
       "total order (prefix consistency), no-creation, no-duplication, "
       "delivery-vs-ack agreement"},
  };
  for (const ComponentRow& row : rows) {
    std::printf("\n%s (work model anchored to the paper's published GPM size):\n", row.name);
    std::printf("  %-38s %u nodes (paper)\n", "EventML specification", row.paper_eventml);
    std::printf("  %-38s %llu work units per message walk\n", "GPM program size anchor",
                row.program_work);
    std::printf("  %-38s %llu work units (x%.2f)\n", "optimized program",
                static_cast<unsigned long long>(
                    static_cast<double>(row.program_work) *
                    consensus::kOptimizedWorkFraction),
                consensus::kOptimizedWorkFraction);
    std::printf("  %-38s %u automatic / %u manual (paper)\n", "lemmas", row.paper_auto,
                row.paper_manual);
    std::printf("  machine-checked here: %s\n", row.properties);
  }

  std::printf("\nNote: this repository replaces Nuprl proofs with machine-checked runtime\n"
              "verification (DESIGN.md §2); \"lemma\" counts cannot be reproduced, so the\n"
              "paper's numbers are shown as reference and our property inventory beside\n"
              "them. The development-effort columns (hours/days/weeks) are not\n"
              "reproducible artifacts.\n");
  return 0;
}
