// Fig. 9(b) — TPC-C (1 warehouse): latency vs. committed transactions/s.
//
// All five transaction types in the standard mix, 1..10 closed-loop clients.
// Systems: ShadowDB-PBR, ShadowDB-SMR, MySQL-repl (InnoDB, semi-sync, row
// locks), H2-stdalone. H2-repl is omitted from the figure in the paper (it
// sustains only 62 tps on table locks held across client round trips); we
// print its 4-client point for reference.
//
// Paper reference: H2-stdalone ~830 tps; ShadowDB-PBR 550 (66 % of
// standalone); ShadowDB-SMR 526 ≈ PBR (execution dominates ordering);
// MySQL-repl below both.
#include <functional>
#include <memory>

#include "sim/world.hpp"
#include "baselines/baseline_server.hpp"
#include "common/bench_util.hpp"
#include "core/shadowdb.hpp"
#include "workload/tpcc.hpp"

namespace shadow::bench {
namespace {

using workload::tpcc::TpccConfig;

constexpr std::size_t kTxnsPerClient = 400;  // paper: 3,000 (scaled for runtime)

TpccConfig tpcc_config() {
  return TpccConfig{};  // the full 1-warehouse configuration
}

std::shared_ptr<const workload::ProcedureRegistry> registry() {
  auto r = std::make_shared<workload::ProcedureRegistry>();
  workload::tpcc::register_procedures(*r);
  return r;
}

struct Fleet {
  std::vector<std::unique_ptr<core::DbClient>> clients;

  void add(sim::World& world, const core::DbClient::Options& options, std::size_t i) {
    const NodeId node = world.add_node("client" + std::to_string(i));
    auto gen = std::make_shared<workload::tpcc::TxnGenerator>(tpcc_config(), 5000 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, options, [gen]() {
          auto txn = gen->next();
          return std::make_pair(txn.proc, txn.params);
        }));
  }

  CurvePoint finish(sim::World& world, std::size_t n_clients) {
    for (auto& c : clients) c->start();
    net::Time horizon = 0;
    while (true) {
      horizon += 50000;
      world.run_until(horizon);
      const bool all = std::all_of(clients.begin(), clients.end(),
                                   [](const auto& c) { return c->done(); });
      if (all || horizon > 6000000000ULL) break;
    }
    CurvePoint point;
    point.clients = n_clients;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    double lat = 0.0;
    for (auto& c : clients) {
      committed += c->committed();
      aborted += c->aborted();
      lat += c->latencies().mean_ms() * static_cast<double>(c->committed() + c->aborted());
    }
    point.throughput_per_sec =
        static_cast<double>(committed) * 1e6 / static_cast<double>(world.now());
    point.mean_latency_ms =
        committed + aborted > 0 ? lat / static_cast<double>(committed + aborted) : 0.0;
    point.abort_rate = committed + aborted > 0
                           ? static_cast<double>(aborted) / static_cast<double>(committed + aborted)
                           : 0.0;
    return point;
  }
};

CurvePoint run_standalone(std::size_t n) {
  sim::World world(31 + n);
  auto engine = std::make_shared<db::Engine>(db::make_h2_traits());
  workload::tpcc::load(*engine, tpcc_config(), 3);
  baselines::StandaloneDb dbx = baselines::make_standalone(world, engine, registry());
  Fleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 30000000;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_pbr(std::size_t n) {
  sim::World world(37 + n);
  core::ClusterOptions opts;
  opts.registry = registry();
  opts.loader = [](db::Engine& e) { workload::tpcc::load(e, tpcc_config(), 3); };
  opts.engines = {db::make_h2_traits()};
  opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
  core::PbrCluster cluster = core::make_pbr_cluster(world, opts);
  Fleet fleet;
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kDirect;
  copts.targets = cluster.request_targets();
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 30000000;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_smr(std::size_t n) {
  sim::World world(41 + n);
  core::ClusterOptions opts;
  opts.registry = registry();
  opts.loader = [](db::Engine& e) { workload::tpcc::load(e, tpcc_config(), 3); };
  opts.engines = {db::make_h2_traits()};
  opts.tob_tier = gpm::ExecutionTier::kCompiled;
  core::SmrCluster cluster = core::make_smr_cluster(world, opts);
  Fleet fleet;
  core::DbClient::Options copts;
  copts.mode = core::DbClient::Mode::kTob;
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 30000000;
  // Spread clients across the service frontends; non-leader nodes relay to
  // the Paxos leader, so this costs no slot races.
  const auto& frontends = cluster.broadcast_targets();
  for (std::size_t i = 0; i < n; ++i) {
    copts.targets = {frontends[i % frontends.size()]};
    fleet.add(world, copts, i);
  }
  return fleet.finish(world, n);
}

CurvePoint run_mysql(std::size_t n) {
  sim::World world(43 + n);
  baselines::ReplicatedDb dbx = baselines::make_mysql_repl(
      world, registry(),
      [](db::Engine& e) { workload::tpcc::load(e, tpcc_config(), 3); },
      db::make_innodb_traits());
  Fleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient;
  copts.retry_timeout = 30000000;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

CurvePoint run_h2_repl(std::size_t n) {
  sim::World world(47 + n);
  baselines::ReplicatedDb dbx = baselines::make_h2_repl(
      world, registry(), [](db::Engine& e) { workload::tpcc::load(e, tpcc_config(), 3); });
  Fleet fleet;
  core::DbClient::Options copts;
  copts.targets = {dbx.node()};
  copts.txn_limit = kTxnsPerClient / 4;  // it is slow; keep the bench short
  copts.retry_timeout = 60000000;
  for (std::size_t i = 0; i < n; ++i) fleet.add(world, copts, i);
  return fleet.finish(world, n);
}

void run_system(const char* name, const std::function<CurvePoint(std::size_t)>& runner,
                const std::vector<std::size_t>& loads) {
  std::vector<CurvePoint> curve;
  for (std::size_t n : loads) curve.push_back(runner(n));
  print_curve(name, curve, true);
  std::printf("   peak committed throughput: %.0f tpcc-txn/s\n", peak_throughput(curve));
}

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow::bench;
  print_header("Fig. 9(b) — TPC-C, 1 warehouse, all five transaction types",
               "paper peaks: H2-stdalone ~830; ShadowDB-PBR 550 (66%); ShadowDB-SMR 526; "
               "MySQL-repl below both; H2-repl 62 (omitted from the figure)");

  const std::vector<std::size_t> loads{1, 2, 4, 6, 8, 10};
  run_system("H2-stdalone", run_standalone, loads);
  run_system("ShadowDB-PBR (H2 replicas)", run_pbr, loads);
  run_system("ShadowDB-SMR (H2 replicas)", run_smr, loads);
  run_system("MySQL-repl (InnoDB, semi-sync)", run_mysql, loads);

  // Reference point for the curve the paper omits.
  const CurvePoint h2repl = run_h2_repl(4);
  std::printf("\n-- H2-repl reference (4 clients) --\n   %.0f tpcc-txn/s, %.1f ms mean, "
              "%.1f%% aborts (paper: 62 tps max)\n",
              h2repl.throughput_per_sec, h2repl.mean_latency_ms, h2repl.abort_rate * 100);
  return 0;
}
