// Fig. 10(a) — "An execution with a crash of the primary".
//
// ShadowDB-PBR under the micro-benchmark with 10 clients; diverse replicas
// (H2-like primary, HSQLDB-like backup, Derby-like spare). The primary is
// crashed after 15 s; detection takes the configured 10 s; the new group
// configuration is then agreed through the (interpreted) broadcast service
// — the paper measures ~69 ms for that delivery — followed by the state
// transfer to the spare (3.8 s for 50,000 rows of 16 B), after which the
// clients resume.
//
// The bench prints the instantaneous committed-transactions/s timeline in
// 1-second buckets plus the measured phase marks (1: crash detection,
// 2: reconfiguration + state transfer, 3: clients resume).
#include <cstdio>
#include <memory>

#include "sim/world.hpp"
#include "common/bench_util.hpp"
#include "core/shadowdb.hpp"
#include "loe/recorder.hpp"
#include "workload/bank.hpp"

namespace shadow::bench {
namespace {

constexpr net::Time kCrashAt = 15000000;       // 15 s
constexpr net::Time kDetection = 10000000;     // 10 s ("detection time is configurable")
constexpr net::Time kRunFor = 60000000;        // 60 s timeline, as in the figure

}  // namespace
}  // namespace shadow::bench

int main() {
  using namespace shadow;
  using namespace shadow::bench;
  print_header("Fig. 10(a) — ShadowDB-PBR timeline across a primary crash",
               "paper: crash @15 s, detection 10 s, reconfiguration delivered ~69 ms after "
               "broadcast, state transfer 3.8 s (50k x 16 B rows), clients resume ~40 s");

  sim::World world(97);
  auto registry = std::make_shared<workload::ProcedureRegistry>();
  workload::bank::register_procedures(*registry);
  const workload::bank::BankConfig bank{50000, 0};

  core::ClusterOptions opts;
  opts.registry = registry;
  opts.loader = [&bank](db::Engine& e) { workload::bank::load(e, bank); };
  // Diversity deployment of the experiment: H2 primary, HSQLDB backup,
  // Derby spare (the paper's exact configuration for this figure).
  opts.engines = {db::make_h2_traits(), db::make_hsqldb_traits(), db::make_derby_traits()};
  opts.tob_tier = gpm::ExecutionTier::kInterpretedOpt;
  opts.pbr.suspect_timeout = kDetection;
  core::PbrCluster cluster = core::make_pbr_cluster(world, opts);

  ThroughputTimeline timeline(1000000);  // 1-second buckets
  std::vector<std::unique_ptr<core::DbClient>> clients;
  for (std::size_t i = 0; i < 10; ++i) {
    const NodeId node = world.add_node("client" + std::to_string(i));
    core::DbClient::Options copts;
    copts.mode = core::DbClient::Mode::kDirect;
    copts.targets = cluster.request_targets();
    copts.txn_limit = 1000000;  // open-ended; the timeline horizon stops us
    copts.retry_timeout = 1500000;
    auto rng = std::make_shared<Rng>(100 + i);
    clients.push_back(std::make_unique<core::DbClient>(
        world, node, ClientId{static_cast<std::uint32_t>(i + 1)}, copts,
        [rng, bank]() {
          return std::make_pair(std::string(workload::bank::kDepositProc),
                                workload::bank::make_deposit(*rng, bank));
        }));
    clients.back()->set_commit_hook([&timeline](net::Time t) { timeline.add(t); });
    clients.back()->start();
  }

  // Observe the reconfiguration delivery (the tob-ack for the proposal).
  struct ReconfigObserver final : sim::WorldObserver {
    net::Time proposal_broadcast = 0;
    net::Time proposal_delivered = 0;
    net::Time first_snapshot_batch = 0;
    net::Time snapshot_done = 0;
    void on_send(net::Time t, NodeId, NodeId, const sim::Message& m) override {
      if (m.header == tob::kBroadcastHeader && proposal_broadcast == 0) proposal_broadcast = t;
      if (m.header == core::kPbrSnapBatchHeader && first_snapshot_batch == 0) {
        first_snapshot_batch = t;
      }
      if (m.header == core::kPbrRecoveredHeader) snapshot_done = t;
    }
    void on_deliver(net::Time t, NodeId, const sim::Message& m) override {
      if (m.header == core::kPbrDeliverHeader && proposal_delivered == 0) {
        proposal_delivered = t;
      }
    }
  } observer;
  world.add_observer(&observer);

  world.run_until(kCrashAt);
  std::printf("\ncrashing primary %s at t=15 s\n",
              world.node_name(cluster.initial_primary()).c_str());
  world.crash(cluster.initial_primary());
  world.run_until(kRunFor);

  std::printf("\n%6s %12s\n", "sec", "commits/s");
  for (std::size_t s = 0; s < 60; ++s) {
    const double rate = timeline.rate_per_sec(s);
    std::printf("%6zu %12.0f  %s\n", s, rate,
                std::string(static_cast<std::size_t>(rate / 150.0), '#').c_str());
  }

  std::printf("\nphase marks:\n");
  std::printf("  crash at                    15.00 s\n");
  std::printf("  suspicion + proposal at     %.2f s (detection configured: 10 s)\n",
              sim::to_sec(observer.proposal_broadcast));
  std::printf("  new configuration delivered %.2f s (+%.0f ms after broadcast; paper: ~69 ms)\n",
              sim::to_sec(observer.proposal_delivered),
              sim::to_ms(observer.proposal_delivered - observer.proposal_broadcast));
  std::printf("  state transfer finished     %.2f s (%.1f s; paper: 3.8 s)\n",
              sim::to_sec(observer.snapshot_done),
              sim::to_sec(observer.snapshot_done - observer.proposal_delivered));
  const bool resumed = timeline.rate_per_sec(55) > 100.0;
  std::printf("  clients resumed:            %s\n", resumed ? "yes" : "NO");
  return resumed ? 0 : 1;
}
